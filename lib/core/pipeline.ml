module Db = Hoiho_geodb.Db
module City = Hoiho_geodb.City
module Pool = Hoiho_util.Pool
module Dataset = Hoiho_itdk.Dataset
module Router = Hoiho_itdk.Router
module Obs = Hoiho_obs.Obs
module Trace = Hoiho_obs.Trace

(* run-level observability (see DESIGN.md §7): per-stage and per-suffix
   wall time plus work counters. The counters are deterministic across
   [jobs] settings because the same stages run on the same inputs
   regardless of scheduling; the duration histograms are wall-clock and
   are not. *)
let h_stage_apparent = Obs.histogram "pipeline.stage.apparent_ms"
let h_stage_regen = Obs.histogram "pipeline.stage.regen_ms"
let h_stage_ncsel = Obs.histogram "pipeline.stage.ncsel_ms"
let h_stage_learn = Obs.histogram "pipeline.stage.learn_ms"
let h_stage_reselect = Obs.histogram "pipeline.stage.reselect_ms"
let h_suffix = Obs.histogram "pipeline.suffix_ms"
let h_run = Obs.histogram "pipeline.run_ms"
let c_suffixes = Obs.counter "pipeline.suffix_groups"
let c_samples = Obs.counter "pipeline.samples"
let c_tagged = Obs.counter "pipeline.tagged"
let c_learned = Obs.counter "pipeline.learned_hints"
let c_degraded = Obs.counter "pipeline.suffix_degraded"

type degradation = { stage : string; error : string }

type suffix_result = {
  suffix : string;
  n_routers : int;
  n_samples : int;
  n_tagged : int;
  n_tagged_routers : int;
  nc : Ncsel.t option;
  learned : Learned.t;
  classification : Ncsel.classification option;
  stats : Confidence.suffix_stats option;
  degraded : degradation option;
}

(* internal: pins a stage failure to its stage name on the way out of
   the Obs.time wrappers, so the degraded result can attribute it *)
exception Stage_failed of string * exn

let stage name f =
  try Trace.with_span ("pipeline.stage." ^ name) f with
  | Stage_failed _ as e -> raise e
  | e -> raise (Stage_failed (name, e))

type t = {
  dataset : Dataset.t;
  consist : Consist.t;
  db : Db.t;
  results : suffix_result list;
  metrics : Obs.snapshot;
}

let run_suffix_exn consist db ~learn_geohints ?jobs ~suffix routers =
  let samples =
    stage "apparent" (fun () ->
        Obs.time h_stage_apparent (fun () ->
            Apparent.build_samples consist db ~suffix routers))
  in
  let tagged = List.filter (fun (s : Apparent.sample) -> s.Apparent.tags <> []) samples in
  Obs.add c_samples (List.length samples);
  Obs.add c_tagged (List.length tagged);
  (* lands on the enclosing pipeline.suffix span when run under [run] *)
  Trace.add_attr "samples" (string_of_int (List.length samples));
  Trace.add_attr "tagged" (string_of_int (List.length tagged));
  let tagged_routers =
    List.sort_uniq compare
      (List.map (fun (s : Apparent.sample) -> s.Apparent.router.Router.id) tagged)
  in
  let base =
    {
      suffix;
      n_routers = List.length routers;
      n_samples = List.length samples;
      n_tagged = List.length tagged;
      n_tagged_routers = List.length tagged_routers;
      nc = None;
      learned = Learned.empty ();
      classification = None;
      stats = None;
      degraded = None;
    }
  in
  if tagged = [] then base
  else begin
    let cands =
      stage "regen" (fun () ->
          Obs.time h_stage_regen (fun () -> Regen.candidates ?jobs ~suffix tagged))
    in
    match
      stage "ncsel" (fun () ->
          Obs.time h_stage_ncsel (fun () -> Ncsel.build ?jobs consist db cands samples))
    with
    | None -> base
    | Some nc0 ->
        let learned =
          stage "learn" (fun () ->
              Obs.time h_stage_learn (fun () ->
                  if learn_geohints then Learn.learn consist db nc0 else Learned.empty ()))
        in
        Obs.add c_learned (Learned.size learned);
        let nc =
          if Learned.is_empty learned then nc0
          else
            stage "reselect" (fun () ->
                Obs.time h_stage_reselect (fun () ->
                    match Ncsel.build ?jobs consist db ~learned cands samples with
                    | Some nc -> nc
                    | None -> nc0))
        in
        {
          base with
          nc = Some nc;
          learned;
          classification = Some (Ncsel.classify nc);
          (* digested from the final NC (after reselect): the per-answer
             confidence signals that must survive into the snapshot *)
          stats = Some (Confidence.stats_of_nc consist nc);
        }
  end

(* Per-suffix failure isolation: suffix groups are mutually independent,
   so one poisoned group (mangled hostname, dangling VP id, pathological
   sample) must not abort the run — it is reported as a [degraded]
   result carrying the failing stage and exception, and every other
   suffix learns normally. The catch lives here rather than in [run] so
   direct [run_suffix] callers (examples, tests, bench) get the same
   contract. *)
let run_suffix consist db ?(learn_geohints = true) ?jobs ~suffix routers =
  Obs.incr c_suffixes;
  let degrade stage_name e =
    Obs.incr c_degraded;
    {
      suffix;
      n_routers = List.length routers;
      n_samples = 0;
      n_tagged = 0;
      n_tagged_routers = 0;
      nc = None;
      learned = Learned.empty ();
      classification = None;
      stats = None;
      degraded = Some { stage = stage_name; error = Printexc.to_string e };
    }
  in
  match run_suffix_exn consist db ~learn_geohints ?jobs ~suffix routers with
  | result -> result
  | exception Stage_failed (name, e) -> degrade name e
  | exception e -> degrade "suffix" e

(* Suffix groups are mutually independent, so a set of them fans out
   over a shared domain pool; [consist] and [db] are read-only after
   construction (see Consist) and safe to share. Each worker may in
   turn fan its candidate evaluations out over the same pool — the
   pool's helping scheduler makes the nesting deadlock-free. Results
   are returned in input-group order and are bit-identical across
   [jobs] settings. Shared by [run] (all groups) and
   [Delta.relearn] (the dirty groups only). *)
let run_groups consist db ?(learn_geohints = true) ?(min_samples = 1) ?jobs
    groups =
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  (* suffix spans run on pool domains whose span stacks are empty; the
     explicit parent keeps the tree identical at every jobs setting *)
  let parent = Trace.fanout_parent () in
  let run_group (suffix, routers) =
    Trace.with_span ~parent "pipeline.suffix" ~attrs:[ ("suffix", suffix) ]
    @@ fun () ->
    Obs.time h_suffix (fun () ->
        let result = run_suffix consist db ~learn_geohints ~jobs ~suffix routers in
        if result.n_tagged < min_samples then
          { result with nc = None; classification = None; stats = None }
        else result)
  in
  if jobs <= 1 then List.map run_group groups
  else begin
    (* LPT submission order: the fattest groups go onto the queue
       first so one huge suffix can't land last and serialize the
       tail of the run; chunk:1 makes every group its own
       stealable job, and each group's internal stages fan out
       over the same pool, so idle lanes help with a fat group
       instead of waiting behind it. Results land back in their
       original slots — output order, and everything downstream,
       is unchanged. *)
    let arr = Array.of_list groups in
    let n = Array.length arr in
    let order = Array.init n (fun i -> i) in
    Array.sort
      (fun a b ->
        compare (List.length (snd arr.(b))) (List.length (snd arr.(a))))
      order;
    let slots = Array.make n None in
    Pool.parallel_for (Pool.get jobs) ~chunk:1 n (fun k ->
        let i = order.(k) in
        slots.(i) <- Some (run_group arr.(i)));
    Array.to_list (Array.map Option.get slots)
  end

let run ?db ?(learn_geohints = true) ?(min_samples = 1) ?jobs dataset =
  let db = match db with Some db -> db | None -> Db.default () in
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  let consist = Consist.create dataset in
  let groups = Dataset.by_suffix dataset in
  Trace.with_span "pipeline.run"
    ~attrs:
      [
        ("dataset", dataset.Dataset.label);
        ("suffix_groups", string_of_int (List.length groups));
      ]
  @@ fun () ->
  let results =
    Obs.time h_run (fun () ->
        run_groups consist db ~learn_geohints ~min_samples ~jobs groups)
  in
  { dataset; consist; db; results; metrics = Obs.snapshot () }

let usable r =
  match r.classification with
  | Some Ncsel.Good | Some Ncsel.Promising -> true
  | _ -> false

let find t suffix = List.find_opt (fun r -> r.suffix = suffix) t.results

(* decision-trace vocabulary shared with Serve.apply_norm (the serving
   mirror of this function): span "geolocate" wraps the whole decision,
   "geolocate.psl" the suffix split, one "geolocate.cand" per regex
   tried, and "geolocate.resolve" the dictionary consultation — the
   attrs together are exactly what [hoiho explain] pretty-prints *)

let trace_groups groups =
  String.concat ","
    (List.map
       (function Some g -> g | None -> "-")
       (Array.to_list groups))

let trace_resolve_result cities provenance confidence =
  Trace.add_attr "provenance" (Evalx.provenance_name provenance);
  (match cities with
  | [] -> Trace.add_attr "resolved" "none"
  | best :: losers ->
      Trace.add_attr "resolved" (City.describe best);
      if losers <> [] then
        Trace.add_attr "collision_losers"
          (String.concat " | "
             (List.map (Confidence.describe_loser ~best) losers)));
  Trace.add_attr "confidence" (Printf.sprintf "%.3f" confidence)

let geolocate_conf t hostname =
  (* the learned regexes speak normalized hostnames (lowercase, no
     whitespace, no root dot): the PSL lookup normalizes internally, so
     the very same normalized string must be what [Engine.exec] sees *)
  let hostname = Hoiho_util.Strutil.normalize_hostname hostname in
  (* lookup is part of the never-raise surface: whatever bytes a PTR
     record serves up, the answer is a location or [None] — never an
     exception *)
  try
    Trace.with_span "geolocate" ~attrs:[ ("hostname", hostname) ]
    @@ fun () ->
    let answer =
      match
        Trace.with_span "geolocate.psl" (fun () ->
            let s = Hoiho_psl.Psl.registered_suffix hostname in
            Trace.add_attr "suffix" (Option.value s ~default:"-");
            s)
      with
      | None -> (None, Confidence.none)
      | Some suffix -> (
          match find t suffix with
          | Some ({ nc = Some nc; learned; stats; _ } as r) when usable r ->
              let stats =
                Option.value stats ~default:Confidence.no_stats
              in
              (* spans for successive candidates must be siblings, so
                 the recursion steps OUTSIDE the current span before
                 trying the next regex *)
              let try_cand (cand : Cand.t) =
                Trace.with_span "geolocate.cand"
                  ~attrs:[ ("regex", cand.Cand.source) ]
                @@ fun () ->
                match Hoiho_rx.Engine.exec cand.Cand.regex hostname with
                | None ->
                    Trace.add_attr "matched" "false";
                    `Next
                | Some groups -> (
                    Trace.add_attr "matched" "true";
                    Trace.add_attr "groups" (trace_groups groups);
                    match Plan.decode cand.Cand.plan groups with
                    | None ->
                        Trace.add_attr "decoded" "false";
                        `Next
                    | Some ex ->
                        Trace.add_attr "hint" ex.Plan.hint;
                        Trace.add_attr "hint_type"
                          (Plan.hint_type_name ex.Plan.hint_type);
                        Trace.with_span "geolocate.resolve"
                        @@ fun () ->
                        let cities, provenance =
                          Evalx.resolve_explained t.db ~learned ex
                        in
                        let confidence =
                          Confidence.of_resolution ~stats ~learned ex
                            (cities, provenance)
                        in
                        trace_resolve_result cities provenance confidence;
                        `Done
                          (match cities with
                          | best :: _ -> (Some best, confidence)
                          | [] -> (None, Confidence.none)))
              in
              let rec first = function
                | [] -> (None, Confidence.none)
                | cand :: rest -> (
                    match try_cand cand with
                    | `Done answer -> answer
                    | `Next -> first rest)
              in
              first nc.Ncsel.cands
          | _ -> (None, Confidence.none))
    in
    Trace.add_attr "answer"
      (match fst answer with Some c -> City.describe c | None -> "none");
    answer
  with _ -> (None, Confidence.none)

let geolocate t hostname = fst (geolocate_conf t hostname)

let geolocated_routers _t r =
  match r.nc with
  | None -> 0
  | Some nc ->
      List.filter_map
        (fun (h : Evalx.hit) ->
          match h.Evalx.outcome with
          | Evalx.TP -> Some h.Evalx.sample.Apparent.router.Router.id
          | _ -> None)
        nc.Ncsel.hits
      |> List.sort_uniq compare |> List.length
