module Db = Hoiho_geodb.Db
module City = Hoiho_geodb.City
module Pool = Hoiho_util.Pool
module Dataset = Hoiho_itdk.Dataset
module Router = Hoiho_itdk.Router
module Obs = Hoiho_obs.Obs

(* run-level observability (see DESIGN.md §7): per-stage and per-suffix
   wall time plus work counters. The counters are deterministic across
   [jobs] settings because the same stages run on the same inputs
   regardless of scheduling; the duration histograms are wall-clock and
   are not. *)
let h_stage_apparent = Obs.histogram "pipeline.stage.apparent_ms"
let h_stage_regen = Obs.histogram "pipeline.stage.regen_ms"
let h_stage_ncsel = Obs.histogram "pipeline.stage.ncsel_ms"
let h_stage_learn = Obs.histogram "pipeline.stage.learn_ms"
let h_stage_reselect = Obs.histogram "pipeline.stage.reselect_ms"
let h_suffix = Obs.histogram "pipeline.suffix_ms"
let h_run = Obs.histogram "pipeline.run_ms"
let c_suffixes = Obs.counter "pipeline.suffix_groups"
let c_samples = Obs.counter "pipeline.samples"
let c_tagged = Obs.counter "pipeline.tagged"
let c_learned = Obs.counter "pipeline.learned_hints"

type suffix_result = {
  suffix : string;
  n_routers : int;
  n_samples : int;
  n_tagged : int;
  n_tagged_routers : int;
  nc : Ncsel.t option;
  learned : Learned.t;
  classification : Ncsel.classification option;
}

type t = {
  dataset : Dataset.t;
  consist : Consist.t;
  db : Db.t;
  results : suffix_result list;
  metrics : Obs.snapshot;
}

let run_suffix consist db ?(learn_geohints = true) ?jobs ~suffix routers =
  Obs.incr c_suffixes;
  let samples =
    Obs.time h_stage_apparent (fun () ->
        Apparent.build_samples consist db ~suffix routers)
  in
  let tagged = List.filter (fun (s : Apparent.sample) -> s.Apparent.tags <> []) samples in
  Obs.add c_samples (List.length samples);
  Obs.add c_tagged (List.length tagged);
  let tagged_routers =
    List.sort_uniq compare
      (List.map (fun (s : Apparent.sample) -> s.Apparent.router.Router.id) tagged)
  in
  let base =
    {
      suffix;
      n_routers = List.length routers;
      n_samples = List.length samples;
      n_tagged = List.length tagged;
      n_tagged_routers = List.length tagged_routers;
      nc = None;
      learned = Learned.empty ();
      classification = None;
    }
  in
  if tagged = [] then base
  else begin
    let cands = Obs.time h_stage_regen (fun () -> Regen.candidates ~suffix tagged) in
    match Obs.time h_stage_ncsel (fun () -> Ncsel.build ?jobs consist db cands samples) with
    | None -> base
    | Some nc0 ->
        let learned =
          Obs.time h_stage_learn (fun () ->
              if learn_geohints then Learn.learn consist db nc0 else Learned.empty ())
        in
        Obs.add c_learned (Learned.size learned);
        let nc =
          if Learned.is_empty learned then nc0
          else
            Obs.time h_stage_reselect (fun () ->
                match Ncsel.build ?jobs consist db ~learned cands samples with
                | Some nc -> nc
                | None -> nc0)
        in
        { base with nc = Some nc; learned; classification = Some (Ncsel.classify nc) }
  end

(* Suffix groups are mutually independent, so the run fans them out
   over a shared domain pool; [consist] and [db] are read-only after
   construction (see Consist) and safe to share. Each worker may in
   turn fan its candidate evaluations out over the same pool — the
   pool's helping scheduler makes the nesting deadlock-free. Results
   are returned in suffix order and are bit-identical across [jobs]
   settings. *)
let run ?db ?(learn_geohints = true) ?(min_samples = 1) ?jobs dataset =
  let db = match db with Some db -> db | None -> Db.default () in
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  let consist = Consist.create dataset in
  let groups = Dataset.by_suffix dataset in
  let run_group (suffix, routers) =
    Obs.time h_suffix (fun () ->
        let result = run_suffix consist db ~learn_geohints ~jobs ~suffix routers in
        if result.n_tagged < min_samples then
          { result with nc = None; classification = None }
        else result)
  in
  let results =
    Obs.time h_run (fun () ->
        if jobs <= 1 then List.map run_group groups
        else Pool.parallel_map (Pool.get jobs) run_group groups)
  in
  { dataset; consist; db; results; metrics = Obs.snapshot () }

let usable r =
  match r.classification with
  | Some Ncsel.Good | Some Ncsel.Promising -> true
  | _ -> false

let find t suffix = List.find_opt (fun r -> r.suffix = suffix) t.results

let geolocate t hostname =
  (* hostnames are matched case-insensitively: the PSL lookup lowercases
     internally, but the learned regexes only speak lowercase, so the
     same lowered string must be what [Engine.exec] sees *)
  let hostname = Hoiho_util.Strutil.lowercase hostname in
  match Hoiho_psl.Psl.registered_suffix hostname with
  | None -> None
  | Some suffix -> (
      match find t suffix with
      | Some ({ nc = Some nc; learned; _ } as r) when usable r ->
          let rec first = function
            | [] -> None
            | (cand : Cand.t) :: rest -> (
                match Hoiho_rx.Engine.exec cand.Cand.regex hostname with
                | None -> first rest
                | Some groups -> (
                    match Plan.decode cand.Cand.plan groups with
                    | None -> first rest
                    | Some ex -> (
                        match Evalx.resolve t.db ~learned ex with
                        | best :: _ -> Some best
                        | [] -> None)))
          in
          first nc.Ncsel.cands
      | _ -> None)

let geolocated_routers _t r =
  match r.nc with
  | None -> 0
  | Some nc ->
      List.filter_map
        (fun (h : Evalx.hit) ->
          match h.Evalx.outcome with
          | Evalx.TP -> Some h.Evalx.sample.Apparent.router.Router.id
          | _ -> None)
        nc.Ncsel.hits
      |> List.sort_uniq compare |> List.length
