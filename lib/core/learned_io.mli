(** Model snapshots: the learn-once / apply-many split.

    The pipeline's end product — per-suffix naming conventions (regex
    sources + decode plans), the learned geohint overlay, and the
    dictionary they were learned against — is serialized to a compact,
    versioned, self-describing JSON document so that geolocation can be
    served long after (and far away from) the training run, without
    re-learning. {!Hoiho_serve.Serve} applies a decoded snapshot at
    scale; [hoiho save-model] / [hoiho apply] are the CLI entry points.

    Decoding is strict and total: any malformed input — truncated file,
    unknown format version, wrong field type, uncompilable regex —
    yields a typed {!error}, never an exception. *)

type cand = {
  source : string;  (** concrete regex syntax, the serialized form *)
  plan : Plan.t;
  regex : Hoiho_rx.Engine.t;
      (** compiled from [source]; on decode the compilation is
          re-validated, so a loaded model is ready to serve *)
}

type suffix_model = {
  suffix : string;
  classification : Ncsel.classification;
  cands : cand list;  (** in application order, first match wins *)
  learned : Learned.t;  (** operator-geohint overlay (stage 4) *)
  stats : Confidence.suffix_stats;
      (** the suffix's confidence signals at learn time (format v2);
          {!Confidence.no_stats} when decoded from a v1 snapshot *)
}

type dictionary =
  | Default  (** the embedded world dataset, {!Hoiho_geodb.Db.default} *)
  | Embedded of Hoiho_geodb.City.t list
      (** full city records carried inside the snapshot — used when the
          model was learned against a non-default dictionary (synthetic
          truth databases, chaos-mutated dictionaries), so apply
          resolves hints exactly as learning did *)

type t = {
  dictionary : dictionary;
  suffixes : suffix_model list;  (** in training order *)
  calibration : float array option;
      (** the model's expected confidence-decile profile
          ({!Confidence.expected_profile} of the suffixes' stats),
          stored at save-model time so the serving daemon can compare
          live served-confidence distributions against it (format v3,
          DESIGN.md §14); [None] for pre-v3 snapshots — drift
          monitoring disabled *)
  metrics : Hoiho_util.Json.t;
      (** observability snapshot of the learn run, carried verbatim for
          provenance (an empty object when unavailable) *)
}

val format_version : int
(** Current snapshot format version (3: v2 plus the expected
    [calibration] profile; 2: v1 plus the per-suffix confidence
    [stats] block). Encoders stamp it; decoders accept
    {!oldest_readable_version} through this and reject anything else
    with {!Unknown_version} — version evolution policy is in
    DESIGN.md §9. *)

val oldest_readable_version : int
(** Oldest version {!decode} still reads (1). v1 suffix models decode
    with {!Confidence.no_stats}; pre-v3 snapshots decode with
    [calibration = None]. *)

type error =
  | Syntax of string  (** not a JSON document: truncation, garbage *)
  | Unknown_version of int
  | Schema of { path : string; expected : string; got : string }
      (** structurally valid JSON that does not satisfy the schema *)

val error_to_string : error -> string

val classification_wire : Ncsel.classification -> string
(** "good" / "promising" / "poor" — the snapshot wire names, shared
    with {!Model_diff} so both artifacts speak one vocabulary. *)

val sorted_entries : Learned.t -> Learned.entry list
(** Entries in (hint_type, hint) order — the stable order {!encode}
    emits, exposed for deterministic diffing. *)

val suffix_model_of_result : Pipeline.suffix_result -> suffix_model option
(** The servable extract of one suffix result: [Some _] exactly when
    the group selected an NC and was classified (the same filter
    {!of_pipeline} applies per result). Exposed so incremental relearn
    ({!Delta.relearn_model}) can rebuild snapshot entries for dirty
    suffixes one at a time. *)

val of_pipeline : Pipeline.t -> t
(** Extract the servable model of a finished run: every suffix that
    selected an NC (with its classification, so apply can honor the
    usable-only contract), the learned overlays, the dictionary (by
    reference when it is physically {!Hoiho_geodb.Db.default}, embedded
    otherwise), and the run's metrics snapshot. *)

val db : t -> Hoiho_geodb.Db.t
(** Resolve {!dictionary} to a database. Rebuilding an [Embedded]
    dictionary is deterministic ({!Hoiho_geodb.Db.of_cities} on the
    stored list), so lookups resolve identically to the training run.
    Cost is one table build — resolve once, not per hostname. *)

val encode : t -> string
(** Stable JSON: equal models encode to equal bytes (learned entries
    are emitted in sorted order; Hashtbl iteration order never leaks). *)

val decode : string -> (t, error) result

val save : string -> t -> unit
(** [save path model] writes [encode model] to [path] atomically enough
    for our purposes (single [open_out]/[output_string]/[close_out]). *)

val load : string -> (t, error) result
(** [decode] of the file contents; unreadable files are [Syntax]. *)

val equal : t -> t -> bool
(** Semantic equality: same dictionary, same suffixes with the same
    (source, plan) candidates and learned entries, equal metrics.
    Compiled regexes are compared by source. *)
