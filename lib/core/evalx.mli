(** Regex and naming-convention evaluation (§5.3).

    Per hostname, a regex earns: TP when its extraction decodes to an
    RTT-consistent location and it captured any state/country code that
    stage 2 tagged as part of the apparent geohint; FP when the
    extraction decodes but is not RTT-consistent; FN when it fails to
    match (or drops the tagged state/country code) on a hostname with an
    apparent geohint; UNK when the extraction is not in the dictionary.
    Rankings use ATP = TP − (FP + FN + UNK) and PPV = TP / (TP + FP). *)

type outcome = TP | FP | FN | UNK | Skip
(** [Skip]: no match on a hostname that had no apparent geohint. *)

type counts = { tp : int; fp : int; fn : int; unk : int }

val zero : counts
val add_outcome : counts -> outcome -> counts
val atp : counts -> int
val ppv : counts -> float
(** 0 when TP+FP = 0. *)

type hit = {
  sample : Apparent.sample;
  outcome : outcome;
  extraction : Plan.extraction option;  (** present when the regex matched *)
  location : Hoiho_geodb.City.t option;
      (** decoded location on TP (best candidate) *)
}

val eval_sample :
  Consist.t ->
  Hoiho_geodb.Db.t ->
  ?learned:Learned.t ->
  Cand.t ->
  Apparent.sample ->
  hit

val eval_cand :
  Consist.t ->
  Hoiho_geodb.Db.t ->
  ?learned:Learned.t ->
  Cand.t ->
  Apparent.sample list ->
  counts * hit list

val eval_cand_counts :
  Consist.t ->
  Hoiho_geodb.Db.t ->
  ?learned:Learned.t ->
  Cand.t ->
  Apparent.sample list ->
  counts
(** {!eval_cand} without materializing the hits list — for scoring
    loops that only rank candidates by counts. *)

val unique_tp_hints : hit list -> string list
(** Distinct hint strings among TP hits. *)

val resolve :
  Hoiho_geodb.Db.t ->
  ?learned:Learned.t ->
  Plan.extraction ->
  Hoiho_geodb.City.t list
(** Candidate locations for an extraction: the learned overlay first,
    then the reference dictionary filtered by any extracted country and
    state codes. *)

type provenance = Overlay | Dictionary

val provenance_name : provenance -> string

val resolve_explained :
  Hoiho_geodb.Db.t ->
  ?learned:Learned.t ->
  Plan.extraction ->
  Hoiho_geodb.City.t list * provenance
(** {!resolve} plus where the answer came from — the decision traces of
    [hoiho explain] record which rule supplied the geohint. *)
