(** Stage 3 regex generation (§5.3, appendix A), phases 1-3.

    Phase 1 builds base regexes from each tagged hostname: the label
    holding the geohint becomes a chunk-accurate pattern with the hint
    captured, other labels become [^\.]+ fillers, and a variant
    collapses the labels before the first capture into a single .+.
    Phase 2 merges regexes that differ only by a digit run, replacing
    \d+ with \d*. Phase 3 specializes fillers to the character-class
    sequences (or literal) they actually matched. Phase 4 — assembling
    regexes into naming conventions — lives in {!Ncsel}. *)

val phase1 : ?jobs:int -> suffix:string -> Apparent.sample list -> Cand.t list

val phase2 : ?jobs:int -> Cand.t list -> Cand.t list
(** Newly created merged candidates (not including the inputs). *)

val phase3 : ?jobs:int -> Apparent.sample list -> Cand.t list -> Cand.t list
(** Newly created specialized candidates (not including the inputs). *)

val candidates : ?jobs:int -> suffix:string -> Apparent.sample list -> Cand.t list
(** All phases, deduplicated: phase1 ∪ phase2 ∪ phase3 output.

    [jobs] (default 1) fans the heavy per-phase work — body generation
    per hostname, distinct-pattern compilation, per-candidate filler
    analysis — out over the shared domain pool as independently
    stealable sub-jobs. The candidate list is identical at every [jobs]
    setting: every fan-out is an order-preserving map of a pure
    function, so dedup keeps the same first occurrences. *)

val max_candidates : int
(** Safety cap on the candidate pool per suffix. *)
