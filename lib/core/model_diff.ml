module City = Hoiho_geodb.City
module Json = Hoiho_util.Json

type status = Added | Dropped | Changed

let status_name = function
  | Added -> "added"
  | Dropped -> "dropped"
  | Changed -> "changed"

type entry_change = {
  hint : string;
  hint_type : Plan.hint_type;
  before : Learned.entry option;
  after : Learned.entry option;
}

type suffix_diff = {
  suffix : string;
  status : status;
  classification_before : Ncsel.classification option;
  classification_after : Ncsel.classification option;
  cands_before : string list;
  cands_after : string list;
  cands_changed : bool;
  hints : entry_change list;
  support_before : int;
  support_after : int;
}

type t = {
  suffixes_before : int;
  suffixes_after : int;
  unchanged : int;
  dictionary_changed : bool;
  diffs : suffix_diff list;
}

let is_empty t = t.diffs = [] && not t.dictionary_changed

(* support: routers corroborating the learned overlay — the sum of TP
   counts across entries, the churn signal the Longitudinal study
   tracks (a convention losing support is rotting) *)
let support (sm : Learned_io.suffix_model) =
  List.fold_left
    (fun acc (e : Learned.entry) -> acc + e.Learned.tp)
    0
    (Learned_io.sorted_entries sm.Learned_io.learned)

let cand_sources (sm : Learned_io.suffix_model) =
  List.map (fun (c : Learned_io.cand) -> c.Learned_io.source) sm.Learned_io.cands

(* candidates compared by (source, plan): the compiled regex is a
   deterministic function of the source, so it carries no extra
   information *)
let cands_equal (a : Learned_io.suffix_model) (b : Learned_io.suffix_model) =
  List.length a.Learned_io.cands = List.length b.Learned_io.cands
  && List.for_all2
       (fun (x : Learned_io.cand) (y : Learned_io.cand) ->
         x.Learned_io.source = y.Learned_io.source
         && x.Learned_io.plan = y.Learned_io.plan)
       a.Learned_io.cands b.Learned_io.cands

let entry_changes (before : Learned_io.suffix_model option)
    (after : Learned_io.suffix_model option) =
  let entries = function
    | None -> []
    | Some sm -> Learned_io.sorted_entries sm.Learned_io.learned
  in
  let index l =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (e : Learned.entry) ->
        Hashtbl.replace tbl (e.Learned.hint_type, e.Learned.hint) e)
      l;
    tbl
  in
  let eb = entries before and ea = entries after in
  let tb = index eb and ta = index ea in
  let keys =
    List.sort_uniq compare
      (List.map
         (fun (e : Learned.entry) -> (e.Learned.hint_type, e.Learned.hint))
         (eb @ ea))
  in
  List.filter_map
    (fun ((hint_type, hint) as k) ->
      let b = Hashtbl.find_opt tb k and a = Hashtbl.find_opt ta k in
      if b = a then None else Some { hint; hint_type; before = b; after = a })
    keys

let suffix_diff_of status (before : Learned_io.suffix_model option)
    (after : Learned_io.suffix_model option) =
  let suffix =
    match (before, after) with
    | Some sm, _ | _, Some sm -> sm.Learned_io.suffix
    | None, None -> assert false
  in
  {
    suffix;
    status;
    classification_before =
      Option.map (fun sm -> sm.Learned_io.classification) before;
    classification_after =
      Option.map (fun sm -> sm.Learned_io.classification) after;
    cands_before = (match before with Some sm -> cand_sources sm | None -> []);
    cands_after = (match after with Some sm -> cand_sources sm | None -> []);
    cands_changed =
      (match (before, after) with
      | Some b, Some a -> not (cands_equal b a)
      | _ -> false);
    hints = entry_changes before after;
    support_before = (match before with Some sm -> support sm | None -> 0);
    support_after = (match after with Some sm -> support sm | None -> 0);
  }

let dictionary_changed (a : Learned_io.t) (b : Learned_io.t) =
  match (a.Learned_io.dictionary, b.Learned_io.dictionary) with
  | Learned_io.Default, Learned_io.Default -> false
  | Learned_io.Embedded ca, Learned_io.Embedded cb -> ca <> cb
  | _ -> true

let suffix_model_equal (a : Learned_io.suffix_model)
    (b : Learned_io.suffix_model) =
  a.Learned_io.classification = b.Learned_io.classification
  && cands_equal a b
  && Learned_io.sorted_entries a.Learned_io.learned
     = Learned_io.sorted_entries b.Learned_io.learned

let diff (before : Learned_io.t) (after : Learned_io.t) =
  let index (m : Learned_io.t) =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (sm : Learned_io.suffix_model) ->
        Hashtbl.replace tbl sm.Learned_io.suffix sm)
      m.Learned_io.suffixes;
    tbl
  in
  let tb = index before and ta = index after in
  let suffixes =
    List.sort_uniq compare
      (List.map
         (fun (sm : Learned_io.suffix_model) -> sm.Learned_io.suffix)
         (before.Learned_io.suffixes @ after.Learned_io.suffixes))
  in
  let unchanged = ref 0 in
  let diffs =
    List.filter_map
      (fun s ->
        match (Hashtbl.find_opt tb s, Hashtbl.find_opt ta s) with
        | Some b, Some a when suffix_model_equal b a ->
            incr unchanged;
            None
        | (Some _ as b), (Some _ as a) -> Some (suffix_diff_of Changed b a)
        | (Some _ as b), None -> Some (suffix_diff_of Dropped b None)
        | None, (Some _ as a) -> Some (suffix_diff_of Added None a)
        | None, None -> None)
      suffixes
  in
  {
    suffixes_before = List.length before.Learned_io.suffixes;
    suffixes_after = List.length after.Learned_io.suffixes;
    unchanged = !unchanged;
    dictionary_changed = dictionary_changed before after;
    diffs;
  }

(* ---- JSON view ------------------------------------------------------ *)

let entry_side_to_json = function
  | None -> Json.Null
  | Some (e : Learned.entry) ->
      Json.Obj
        [
          ("city", Json.String (City.key e.Learned.city));
          ("tp", Json.Int e.Learned.tp);
          ("fp", Json.Int e.Learned.fp);
          ("collides", Json.Bool e.Learned.collides);
        ]

let entry_change_to_json c =
  Json.Obj
    [
      ("hint", Json.String c.hint);
      ("type", Json.String (Plan.hint_type_name c.hint_type));
      ("before", entry_side_to_json c.before);
      ("after", entry_side_to_json c.after);
    ]

let classification_to_json = function
  | None -> Json.Null
  | Some c -> Json.String (Learned_io.classification_wire c)

let suffix_diff_to_json d =
  Json.Obj
    [
      ("suffix", Json.String d.suffix);
      ("status", Json.String (status_name d.status));
      ("classification_before", classification_to_json d.classification_before);
      ("classification_after", classification_to_json d.classification_after);
      ( "cands_before",
        Json.List (List.map (fun s -> Json.String s) d.cands_before) );
      ( "cands_after",
        Json.List (List.map (fun s -> Json.String s) d.cands_after) );
      ("cands_changed", Json.Bool d.cands_changed);
      ("hints", Json.List (List.map entry_change_to_json d.hints));
      ("support_before", Json.Int d.support_before);
      ("support_after", Json.Int d.support_after);
    ]

let to_json t =
  Json.Obj
    [
      ("suffixes_before", Json.Int t.suffixes_before);
      ("suffixes_after", Json.Int t.suffixes_after);
      ("unchanged", Json.Int t.unchanged);
      ("dictionary_changed", Json.Bool t.dictionary_changed);
      ("diffs", Json.List (List.map suffix_diff_to_json t.diffs));
    ]

let encode t = Json.to_string (to_json t)

(* ---- text view ------------------------------------------------------ *)

let classification_text = function
  | None -> "-"
  | Some c -> Learned_io.classification_wire c

let entry_stats (e : Learned.entry) =
  Printf.sprintf "%s (tp %d, fp %d%s)"
    (City.key e.Learned.city)
    e.Learned.tp e.Learned.fp
    (if e.Learned.collides then ", collides" else "")

let entry_change_text c =
  let label = Printf.sprintf "%s %s" (Plan.hint_type_name c.hint_type) c.hint in
  match (c.before, c.after) with
  | None, Some e -> Printf.sprintf "    + %s -> %s" label (entry_stats e)
  | Some e, None -> Printf.sprintf "    - %s -> %s" label (entry_stats e)
  | Some b, Some a ->
      Printf.sprintf "    ~ %s -> %s => %s" label (entry_stats b) (entry_stats a)
  | None, None -> assert false

let suffix_diff_text d =
  let head =
    match d.status with
    | Added ->
        Printf.sprintf "+ %s [%s] support %d" d.suffix
          (classification_text d.classification_after)
          d.support_after
    | Dropped ->
        Printf.sprintf "- %s [%s] support %d" d.suffix
          (classification_text d.classification_before)
          d.support_before
    | Changed ->
        let cls =
          if d.classification_before = d.classification_after then
            classification_text d.classification_after
          else
            Printf.sprintf "%s -> %s"
              (classification_text d.classification_before)
              (classification_text d.classification_after)
        in
        let sup =
          if d.support_before = d.support_after then
            string_of_int d.support_after
          else Printf.sprintf "%d -> %d" d.support_before d.support_after
        in
        Printf.sprintf "~ %s [%s] support %s" d.suffix cls sup
  in
  let regexes =
    if d.cands_changed then
      [
        Printf.sprintf "    regexes changed (%d -> %d)"
          (List.length d.cands_before)
          (List.length d.cands_after);
      ]
    else []
  in
  (head :: regexes) @ List.map entry_change_text d.hints

let render_text t =
  let added, dropped, changed =
    List.fold_left
      (fun (a, d, c) x ->
        match x.status with
        | Added -> (a + 1, d, c)
        | Dropped -> (a, d + 1, c)
        | Changed -> (a, d, c + 1))
      (0, 0, 0) t.diffs
  in
  let header =
    Printf.sprintf
      "model diff: %d -> %d suffixes (%d unchanged, %d added, %d dropped, %d \
       changed); dictionary %s"
      t.suffixes_before t.suffixes_after t.unchanged added dropped changed
      (if t.dictionary_changed then "changed" else "unchanged")
  in
  String.concat "\n" (header :: List.concat_map suffix_diff_text t.diffs) ^ "\n"
