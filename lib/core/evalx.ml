module Engine = Hoiho_rx.Engine
module City = Hoiho_geodb.City
module Db = Hoiho_geodb.Db

type outcome = TP | FP | FN | UNK | Skip

type counts = { tp : int; fp : int; fn : int; unk : int }

let zero = { tp = 0; fp = 0; fn = 0; unk = 0 }

let add_outcome c = function
  | TP -> { c with tp = c.tp + 1 }
  | FP -> { c with fp = c.fp + 1 }
  | FN -> { c with fn = c.fn + 1 }
  | UNK -> { c with unk = c.unk + 1 }
  | Skip -> c

let atp c = c.tp - (c.fp + c.fn + c.unk)

let ppv c =
  if c.tp + c.fp = 0 then 0.0
  else float_of_int c.tp /. float_of_int (c.tp + c.fp)

type hit = {
  sample : Apparent.sample;
  outcome : outcome;
  extraction : Plan.extraction option;
  location : City.t option;
}

type provenance = Overlay | Dictionary

let provenance_name = function
  | Overlay -> "learned-overlay"
  | Dictionary -> "dictionary"

let resolve_explained db ?learned (ex : Plan.extraction) =
  let from_overlay =
    match learned with
    | None -> None
    | Some l -> (
        match Learned.find l ex.Plan.hint_type ex.Plan.hint with
        | Some entry -> Some [ entry.Learned.city ]
        | None -> None)
  in
  match from_overlay with
  | Some cities -> (cities, Overlay)
  | None ->
      let cities = Dicts.lookup db ex.Plan.hint_type ex.Plan.hint in
      let narrowed =
        List.filter
          (fun c ->
            (match ex.Plan.cc with
            | Some code -> Dicts.cc_matches c code
            | None -> true)
            &&
            match ex.Plan.state with
            | Some code -> Dicts.state_matches c code
            | None -> true)
          cities
      in
      ((if narrowed <> [] then narrowed else cities), Dictionary)

let resolve db ?learned ex = fst (resolve_explained db ?learned ex)

(* the stage-2 expectation this extraction corresponds to, if any *)
let matching_tag (sample : Apparent.sample) hint =
  List.find_opt (fun (t : Apparent.tag) -> t.Apparent.hint = hint) sample.Apparent.tags

let eval_sample consist db ?learned (cand : Cand.t) (sample : Apparent.sample) =
  let tagged = sample.Apparent.tags <> [] in
  match Engine.exec cand.Cand.regex sample.Apparent.hostname with
  | None ->
      {
        sample;
        outcome = (if tagged then FN else Skip);
        extraction = None;
        location = None;
      }
  | Some groups -> (
      match Plan.decode cand.Cand.plan groups with
      | None ->
          { sample; outcome = (if tagged then FN else Skip); extraction = None; location = None }
      | Some ex ->
          let missing_region =
            match matching_tag sample ex.Plan.hint with
            | Some tag ->
                (tag.Apparent.cc <> None && ex.Plan.cc = None)
                || (tag.Apparent.state <> None && ex.Plan.state = None)
            | None -> false
          in
          if missing_region then
            { sample; outcome = FN; extraction = Some ex; location = None }
          else begin
            let cities = resolve db ?learned ex in
            if cities = [] then
              { sample; outcome = UNK; extraction = Some ex; location = None }
            else begin
              let consistent =
                List.filter
                  (Consist.city_consistent consist sample.Apparent.router)
                  cities
              in
              match consistent with
              | best :: _ ->
                  { sample; outcome = TP; extraction = Some ex; location = Some best }
              | [] ->
                  {
                    sample;
                    outcome = FP;
                    extraction = Some ex;
                    location = None;
                  }
            end
          end)

let eval_cand consist db ?learned cand samples =
  let hits = List.map (eval_sample consist db ?learned cand) samples in
  let counts = List.fold_left (fun c h -> add_outcome c h.outcome) zero hits in
  (counts, hits)

(* candidate-scoring loops only rank by counts; skip building the hits
   list (each hit dies young instead of being retained) *)
let eval_cand_counts consist db ?learned cand samples =
  List.fold_left
    (fun c sample ->
      add_outcome c (eval_sample consist db ?learned cand sample).outcome)
    zero samples

let unique_tp_hints hits =
  List.filter_map
    (fun h ->
      match (h.outcome, h.extraction) with
      | TP, Some ex -> Some ex.Plan.hint
      | _ -> None)
    hits
  |> List.sort_uniq compare
