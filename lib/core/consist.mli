(** RTT-consistency testing (§5.2).

    A candidate location for a router is RTT-consistent when, for every
    vantage point with an RTT sample to the router, the measured RTT is
    no smaller than the theoretical best-case RTT from that VP to the
    location. Ping-based RTTs are used when available; otherwise the
    looser traceroute-observed RTTs (which are sound but constrain a
    much larger area, figure 5).

    Best-case VP→location RTTs are memoized, since the same few hundred
    dictionary locations are tested against the same VPs millions of
    times during a run.

    A value of type [t] is read-only after [create] returns and safe to
    share across domains: the pipeline fans suffix groups out over a
    {!Hoiho_util.Pool} while every worker consults the same [t]. The
    RTT memo is domain-local storage, so concurrent lookups never touch
    a shared table. Any future mutable field must preserve this
    contract. *)

type t

exception Unknown_vp of int
(** An RTT sample names a VP id the dataset does not contain (corrupt
    alias resolution, or chaos injection). Raised by the lookups below
    with the offending id, deterministically — the same dataset fails
    the same way at any [jobs] setting — so the pipeline can pin the
    failure on the suffix group that carried the sample. *)

val create : Hoiho_itdk.Dataset.t -> t

val dataset : t -> Hoiho_itdk.Dataset.t

val router_rtts : t -> Hoiho_itdk.Router.t -> (Hoiho_itdk.Vp.t * float) list
(** The RTT vector used for consistency testing. *)

val location_consistent :
  t -> Hoiho_itdk.Router.t -> Hoiho_geo.Coord.t -> bool
(** True when every RTT sample admits the location. A router with no
    RTT samples is vacuously consistent with any location. *)

val city_consistent : t -> Hoiho_itdk.Router.t -> Hoiho_geodb.City.t -> bool

type channel = Ping | Trace

val channel_consistent :
  t -> Hoiho_itdk.Router.t -> channel -> Hoiho_geo.Coord.t -> bool
(** {!location_consistent} restricted to one measurement channel's RTT
    samples — [location_consistent] itself uses ping when available and
    traceroute otherwise, so it can never report the two channels
    disagreeing. This can: it is the cross-channel corroboration probe
    behind {!Confidence.stats_of_nc}. Vacuously true when the channel
    has no samples for the router. *)

val closest_vp_rtt : t -> Hoiho_itdk.Router.t -> float option
(** Smallest ping RTT, if any (figure 10a / 11 analyses). *)
