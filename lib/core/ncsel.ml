module Obs = Hoiho_obs.Obs
module Trace = Hoiho_obs.Trace

(* stage-4 selection metrics: candidates that reached the expensive
   per-sample evaluation, exact (source, plan) duplicates dropped
   before it, and evaluated candidates rejected for matching nothing *)
let c_evaluated = Obs.counter "ncsel.candidates_evaluated"
let c_deduped = Obs.counter "ncsel.candidates_deduped"
let c_rejected = Obs.counter "ncsel.candidates_rejected"

type classification = Good | Promising | Poor

type t = {
  cands : Cand.t list;
  counts : Evalx.counts;
  hits : Evalx.hit list;
  unique_hints : int;
}

let seed_count = 8

(* per-candidate hits are evaluated once; NC evaluation then just picks,
   per sample, the first member whose regex matched *)
type prepared = { cand : Cand.t; hits : Evalx.hit array; atp : int }

let matched (h : Evalx.hit) = h.Evalx.extraction <> None

let eval_prepared samples (members : prepared list) =
  let n = Array.length samples in
  let hits =
    Array.to_list
      (Array.init n (fun i ->
           let sample = samples.(i) in
           let rec first = function
             | [] ->
                 let tagged = sample.Apparent.tags <> [] in
                 {
                   Evalx.sample;
                   outcome = (if tagged then Evalx.FN else Evalx.Skip);
                   extraction = None;
                   location = None;
                 }
             | m :: rest -> if matched m.hits.(i) then m.hits.(i) else first rest
           in
           first members))
  in
  let counts =
    List.fold_left (fun c (h : Evalx.hit) -> Evalx.add_outcome c h.Evalx.outcome) Evalx.zero hits
  in
  {
    cands = List.map (fun m -> m.cand) members;
    counts;
    hits;
    unique_hints = List.length (Evalx.unique_tp_hints hits);
  }

(* unique TP hints attributed to each member within an NC: a sample is
   attributed to the first member whose regex matched it *)
let member_unique_hints samples (members : prepared list) =
  let n = Array.length samples in
  let tables = List.map (fun _ -> Hashtbl.create 8) members in
  for i = 0 to n - 1 do
    let rec attribute ms ts =
      match (ms, ts) with
      | [], [] -> ()
      | m :: ms', t :: ts' ->
          if matched m.hits.(i) then begin
            match m.hits.(i) with
            | { Evalx.outcome = Evalx.TP; extraction = Some ex; _ } ->
                Hashtbl.replace t ex.Plan.hint ()
            | _ -> ()
          end
          else attribute ms' ts'
      | _ -> assert false
    in
    attribute members tables
  done;
  List.map Hashtbl.length tables

(* evaluating the same compiled regex with the same decode plan twice
   cannot change any count; drop exact duplicates before the expensive
   per-candidate evaluation *)
let dedupe_cands cands =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (c : Cand.t) ->
      let key = (c.Cand.source, c.Cand.plan) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    cands

let prepare ?(jobs = 1) consist db ?learned cands samples_arr =
  (* per-candidate spans run on arbitrary pool domains; the explicit
     parent (captured here, on the submitting domain) keeps them nested
     under this build at every jobs setting *)
  let parent = Trace.fanout_parent () in
  let eval cand =
    Trace.with_span ~parent "ncsel.cand"
      ~attrs:
        [
          ("source", cand.Cand.source);
          ("plan", Format.asprintf "%a" Plan.pp cand.Cand.plan);
        ]
    @@ fun () ->
    let hits =
      Array.map (Evalx.eval_sample consist db ?learned cand) samples_arr
    in
    let counts =
      Array.fold_left
        (fun c (h : Evalx.hit) -> Evalx.add_outcome c h.Evalx.outcome)
        Evalx.zero hits
    in
    Trace.add_attr "atp" (string_of_int (Evalx.atp counts));
    { cand; hits; atp = Evalx.atp counts }
  in
  (* fault determinism: evaluate EVERY candidate (capturing failures
     per job) and re-raise the first error in candidate order, not
     completion order — so a poisoned sample aborts the suffix with the
     same work counters and the same attributed exception whether the
     fan-out ran on one lane or eight. chunk:1 makes each candidate its
     own stealable job: a fat suffix's evaluation tail is then drained
     by whichever lanes fall idle, instead of serializing on the lane
     that happened to dequeue its chunk. *)
  let results =
    Hoiho_util.Pool.map_results (Hoiho_util.Pool.get jobs) ~chunk:1 eval cands
  in
  let rec unwrap = function
    | [] -> []
    | Ok m :: rest -> m :: unwrap rest
    | Error e :: _ -> Hoiho_util.Pool.raise_job_error e
  in
  unwrap results

let eval_nc consist db ?learned cands samples =
  let samples_arr = Array.of_list samples in
  let members = prepare consist db ?learned cands samples_arr in
  eval_prepared samples_arr members

let min_member_hints = 3
let ppv_tolerance = 0.10

let grow samples_arr ranked seed =
  let seed_nc = eval_prepared samples_arr [ seed ] in
  let seed_ppv = Evalx.ppv seed_nc.counts in
  let rec loop members nc =
    let current_atp = Evalx.atp nc.counts in
    let try_add m =
      if List.memq m members then None
      else begin
        let members' = members @ [ m ] in
        let nc' = eval_prepared samples_arr members' in
        let ok =
          Evalx.atp nc'.counts > current_atp
          && List.for_all
               (fun u -> u >= min_member_hints)
               (member_unique_hints samples_arr members')
          && Evalx.ppv nc'.counts >= seed_ppv -. ppv_tolerance
        in
        if ok then Some (members', nc') else None
      end
    in
    let best =
      List.fold_left
        (fun acc m ->
          match try_add m with
          | None -> acc
          | Some (_, nc') as ext -> (
              match acc with
              | Some (_, best_nc) when Evalx.atp best_nc.counts >= Evalx.atp nc'.counts ->
                  acc
              | _ -> ext))
        None ranked
    in
    match best with
    | Some (members', nc') -> loop members' nc'
    | None -> nc
  in
  loop [ seed ] seed_nc

let build ?jobs consist db ?learned cands samples =
  let jobs = match jobs with Some j -> j | None -> Hoiho_util.Pool.default_jobs () in
  let samples_arr = Array.of_list samples in
  let n_raw = List.length cands in
  Trace.with_span "ncsel.build"
    ~attrs:
      [
        ("cands_in", string_of_int n_raw);
        ("samples", string_of_int (Array.length samples_arr));
      ]
  @@ fun () ->
  let cands = dedupe_cands cands in
  Obs.add c_deduped (n_raw - List.length cands);
  Obs.add c_evaluated (List.length cands);
  Trace.add_attr "deduped" (string_of_int (n_raw - List.length cands));
  let prepared = prepare ~jobs consist db ?learned cands samples_arr in
  let with_matches =
    List.filter (fun m -> Array.exists matched m.hits) prepared
  in
  Obs.add c_rejected (List.length prepared - List.length with_matches);
  Trace.add_attr "rejected"
    (string_of_int (List.length prepared - List.length with_matches));
  match with_matches with
  | [] -> None
  | _ ->
      let ranked =
        List.sort (fun a b -> compare b.atp a.atp) with_matches
      in
      let seeds = List.filteri (fun i _ -> i < seed_count) ranked in
      (* the greedy grow from each seed is independent and reads only
         precomputed hits; growing the 8 seeds as stealable sub-jobs
         parallelizes the set-building tail that used to serialize a
         fat suffix. [grow] is pure and touches no Obs counter, so the
         order-preserving map keeps results jobs-invariant. *)
      let ncs =
        if jobs <= 1 then List.map (grow samples_arr ranked) seeds
        else
          Hoiho_util.Pool.parallel_map (Hoiho_util.Pool.get jobs) ~chunk:1
            (grow samples_arr ranked) seeds
      in
      let by_atp =
        List.sort
          (fun a b -> compare (Evalx.atp b.counts) (Evalx.atp a.counts))
          ncs
      in
      (match by_atp with
      | [] -> None
      | best :: _ ->
          (* prefer fewer regexes when within 3 TPs of the best *)
          let contenders =
            List.filter
              (fun nc -> nc.counts.Evalx.tp >= best.counts.Evalx.tp - 3)
              by_atp
          in
          let preferred =
            List.fold_left
              (fun acc nc ->
                match acc with
                | None -> Some nc
                | Some cur ->
                    if List.length nc.cands < List.length cur.cands then Some nc
                    else acc)
              None contenders
          in
          (match preferred with Some nc -> Some nc | None -> Some best))

let classify nc =
  let ppv = Evalx.ppv nc.counts in
  if nc.unique_hints >= 3 && ppv >= 0.9 then Good
  else if nc.unique_hints >= 3 && ppv >= 0.8 then Promising
  else Poor

let usable nc = match classify nc with Good | Promising -> true | Poor -> false
