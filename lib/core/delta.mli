(** Incremental relearn: ingest a stream of hostname/RTT observation
    events, mark only the affected suffix groups dirty, and re-run the
    pipeline over just those groups while reusing the prior results for
    clean ones (the batch→streaming step of ROADMAP open item 2,
    modeled on ip6neigh's event-driven monitor).

    The central guarantee is {b equivalence}: because each suffix
    group's result depends only on that group's routers, the VP set,
    and the dictionary (see {!Pipeline.run_groups}), an incremental
    relearn produces output identical to a from-scratch batch learn of
    the final corpus — same results, same degraded sets, and a
    {!Learned_io.encode} that is byte-identical modulo the wall-clock
    metrics block — at every [jobs] setting. The drift test suite
    (test/test_delta.ml) holds this property over seeded event streams
    at jobs 1 and 4. *)

type event =
  | Upsert of Hoiho_itdk.Router.t
      (** replace the router with this id (or add it, appended at the
          end of the corpus order) *)
  | Remove of int  (** retire a router by id *)
  | Add_hostname of { router : int; hostname : string }
      (** observed a new PTR name; a duplicate of an existing name is a
          no-op *)
  | Remove_hostname of { router : int; hostname : string }
      (** a PTR name disappeared; removing an absent name is a no-op *)
  | Set_hostnames of { router : int; hostnames : string list }
      (** wholesale rename (renumbering, convention migration) *)
  | Set_rtts of {
      router : int;
      ping : (int * float) list;
      trace : (int * float) list;
    }  (** fresh RTT measurements, replacing both channels *)

type error = Unknown_router of { event : int; id : int }
    (** [event] is the 0-based index of the offending event in the
        stream. Raised by hostname/RTT/remove events naming a router
        the corpus does not contain — only [Upsert] may introduce
        ids. *)

val error_to_string : error -> string

type stats = {
  events : int;  (** events ingested *)
  dirty : string list;  (** dirty suffixes, sorted *)
  groups_relearned : int;  (** suffix groups recomputed *)
  groups_reused : int;  (** prior results carried over untouched *)
}
(** All four fields are deterministic functions of (prior corpus, event
    stream): identical at every [jobs] setting. Mirrored into the
    process-wide [relearn.*] counters. *)

val apply :
  Hoiho_itdk.Dataset.t ->
  event list ->
  (Hoiho_itdk.Dataset.t * string list, error) result
(** Replay events over a corpus, returning the final corpus and the
    sorted dirty-suffix set. The dirty set is conservative: a touched
    router marks the registered suffixes of its hostnames both before
    and after the change, so results can only be reused for groups no
    event could have influenced. Structural no-op events (re-adding an
    existing hostname, setting identical RTTs) dirty nothing. Corpus
    order is preserved: removals filter in place, upserts of existing
    ids replace in place, new routers append — so replaying the same
    events always yields the same corpus, byte for byte. Links touching
    removed routers are dropped; VPs and label are unchanged. *)

val events_between :
  Hoiho_itdk.Dataset.t -> Hoiho_itdk.Dataset.t -> event list
(** The event stream turning the first corpus into the second:
    removals first, then per new-corpus-order a minimal event for each
    changed router ([Set_hostnames]/[Set_rtts] when only that field
    moved, full [Upsert] otherwise). When new routers appear at the end
    of the new corpus (the {!Hoiho_netsim.Evolve} contract), [apply]
    of the result reproduces the second corpus exactly. *)

val events_to_string : event list -> string
(** Stable JSON wire form: a list of objects discriminated by ["op"].
    Only observable fields travel — an [Upsert] carries hostnames, ASN
    and RTTs, never the generator's ground truth (unavailable at
    observation time by construction), so a truth-bearing [Upsert] does
    not round-trip its [truth] field. *)

val events_of_string : string -> (event list, string) result
(** Strict decode of the wire form. Any malformed input — not JSON,
    not a list, unknown op, missing or mistyped field — is an [Error]
    naming the offending event index. Never raises. *)

val relearn :
  ?learn_geohints:bool ->
  ?min_samples:int ->
  ?jobs:int ->
  prior:Pipeline.t ->
  event list ->
  (Pipeline.t * stats, error) result
(** Incremental counterpart of {!Pipeline.run}: apply the events to the
    prior run's corpus, recompute only the dirty suffix groups (with
    the given options, which must match the prior run's for the
    equivalence guarantee to hold), and reuse the prior [suffix_result]
    for every clean group. The returned run is positioned exactly as
    [Pipeline.run ~db ?learn_geohints ?min_samples ?jobs final_corpus]
    would be, except its [metrics] snapshot reflects only the work
    actually done. *)

val relearn_model :
  ?jobs:int ->
  model:Learned_io.t ->
  corpus:Hoiho_itdk.Dataset.t ->
  event list ->
  (Learned_io.t * Hoiho_itdk.Dataset.t * stats, error) result
(** Snapshot-level incremental relearn, for serving: [model] must be a
    default-options batch learn of [corpus] (what [hoiho learn] /
    {!Learned_io.of_pipeline} produce). Applies the events, relearns
    dirty groups against the model's own dictionary, and splices fresh
    suffix models over the carried-over ones in final-corpus order.
    The result encodes byte-identically to
    [of_pipeline (Pipeline.run ~db final_corpus)] with both metrics
    blocks normalized to [{}] (the returned model's metrics are already
    [{}] — incremental work-rates would be misleading provenance).
    Also returns the final corpus for the caller to retain as the next
    relearn's base. *)
