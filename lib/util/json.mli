(** Minimal JSON: a value type, a strict recursive-descent parser, and a
    stable compact printer.

    The repo deliberately carries no third-party JSON dependency
    ({!Hoiho_obs.Obs.to_json} prints by hand); this module adds the
    decode half needed by model snapshots ({!Hoiho.Learned_io}).

    The printer and parser round-trip: [parse (to_string v) = Ok v] for
    every value this module can produce. Floats are printed with enough
    digits ([%.17g]) to reparse to the identical bit pattern; integers
    stay integers ([Int] never silently becomes [Float]). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** fields in order; first binding wins *)

val to_string : t -> string
(** Compact rendering (no insignificant whitespace). Object keys keep
    the order given — callers wanting stable output sort before
    printing. Strings are escaped per RFC 8259; non-finite floats
    render as [null] (JSON has no representation for them). *)

val parse : string -> (t, string) result
(** Strict parse of a complete JSON document. The whole input must be
    consumed (trailing whitespace allowed); anything else — truncation,
    trailing garbage, bad escapes, malformed numbers — is an [Error]
    naming the byte offset. Never raises. *)

val kind : t -> string
(** "null", "bool", "int", "float", "string", "list" or "object" — for
    schema-error messages. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on absent field or non-object. *)

val equal : t -> t -> bool
(** Structural equality, with object fields compared order-insensitively
    (duplicate keys resolved to the first binding). *)
