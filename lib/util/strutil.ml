let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_digit c = c >= '0' && c <= '9'
let is_alnum c = is_alpha c || is_digit c
let lowercase = String.lowercase_ascii

let is_dns_space c =
  c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = '\011' || c = '\012'

let normalize_hostname s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c -> if not (is_dns_space c) then Buffer.add_char buf (Char.lowercase_ascii c))
    s;
  let out = Buffer.contents buf in
  let n = String.length out in
  (* a single trailing dot is the DNS root label, not an empty label *)
  if n > 0 && out.[n - 1] = '.' then String.sub out 0 (n - 1) else out

let has_empty_dns_label s =
  let n = String.length s in
  n = 0
  || s.[0] = '.'
  || s.[n - 1] = '.'
  ||
  let rec scan i = i < n - 1 && ((s.[i] = '.' && s.[i + 1] = '.') || scan (i + 1)) in
  scan 0

let split_on sep s =
  String.split_on_char sep s |> List.filter (fun x -> x <> "")

let split_labels s = split_on '.' s

let split_punct s =
  let n = String.length s in
  let out = ref [] in
  let buf = Buffer.create 8 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  for i = 0 to n - 1 do
    if is_alnum s.[i] then Buffer.add_char buf s.[i] else flush ()
  done;
  flush ();
  List.rev !out

let alpha_runs s =
  let n = String.length s in
  let out = ref [] in
  let buf = Buffer.create 8 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  for i = 0 to n - 1 do
    if is_alpha s.[i] then Buffer.add_char buf s.[i] else flush ()
  done;
  flush ();
  List.rev !out

let strip_trailing_digits s =
  let n = String.length s in
  let rec last i = if i > 0 && is_digit s.[i - 1] then last (i - 1) else i in
  String.sub s 0 (last n)

let strip_leading_digits s =
  let n = String.length s in
  let rec first i = if i < n && is_digit s.[i] then first (i + 1) else i in
  let i = first 0 in
  String.sub s i (n - i)

let has_suffix ~suffix s =
  let ls = String.length s and lf = String.length suffix in
  lf <= ls && String.sub s (ls - lf) lf = suffix

let has_prefix ~prefix s =
  let ls = String.length s and lp = String.length prefix in
  lp <= ls && String.sub s 0 lp = prefix

let drop_suffix ~suffix s =
  if not (has_suffix ~suffix s) then None
  else
    let keep = String.length s - String.length suffix in
    let keep = if keep > 0 && s.[keep - 1] = '.' then keep - 1 else keep in
    Some (String.sub s 0 keep)

let is_subsequence small big =
  let ls = String.length small and lb = String.length big in
  let rec go i j =
    if i = ls then true
    else if j = lb then false
    else if small.[i] = big.[j] then go (i + 1) (j + 1)
    else go i (j + 1)
  in
  go 0 0

let longest_common_run a b =
  let la = String.length a and lb = String.length b in
  let best = ref 0 in
  for i = 0 to la - 1 do
    for j = 0 to lb - 1 do
      let k = ref 0 in
      while i + !k < la && j + !k < lb && a.[i + !k] = b.[j + !k] do incr k done;
      if !k > !best then best := !k
    done
  done;
  !best

let join = String.concat

let chunks_of_classes s =
  let n = String.length s in
  let out = ref [] in
  let buf = Buffer.create 8 in
  let kind_of c = if is_alpha c then `A else if is_digit c then `D else `O in
  let cur = ref `None in
  let flush () =
    if Buffer.length buf > 0 then begin
      let str = Buffer.contents buf in
      let item =
        match !cur with
        | `A -> `Alpha str
        | `D -> `Digit str
        | `O -> `Other str
        | `None -> assert false
      in
      out := item :: !out;
      Buffer.clear buf
    end
  in
  for i = 0 to n - 1 do
    let k = kind_of s.[i] in
    (match (!cur, k) with
    | `None, _ -> cur := (k :> [ `A | `D | `O | `None ])
    | `A, `A | `D, `D | `O, `O -> ()
    | _ ->
        flush ();
        cur := (k :> [ `A | `D | `O | `None ]));
    Buffer.add_char buf s.[i]
  done;
  flush ();
  List.rev !out
