(** A fixed-size work pool over OCaml 5 domains (stdlib only).

    Worker domains are spawned once at pool creation and reused for
    every subsequent batch; work is distributed as contiguous chunks
    through a queue guarded by a mutex/condition pair. The submitting
    thread participates in draining the queue while it waits, so
    [parallel_map] may be called from inside a pool task (nested
    parallelism) without deadlock.

    [parallel_map] preserves input order, making a parallel run's
    output indistinguishable from the sequential one whenever the
    mapped function is pure. With [jobs <= 1] every operation degrades
    to a plain in-thread [map]/[iter] — the deterministic sequential
    fallback. *)

type t

val default_jobs : unit -> int
(** The [HOIHO_JOBS] environment variable when set to a positive
    integer, otherwise [Domain.recommended_domain_count () - 1]
    (the submitting thread is one of the lanes), and at least 1. *)

val create : ?jobs:int -> unit -> t
(** Spawn a pool of [jobs] lanes ([jobs - 1] domains; the caller is the
    last lane). Defaults to {!default_jobs}. *)

val jobs : t -> int

val get : int -> t
(** A process-wide shared pool of the given size, spawned on first use
    and reused afterwards. Prefer this to [create] on hot paths so
    domains are spawned once per process. *)

val parallel_map : t -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving map. If any application raises, the first
    exception (by completion time) is re-raised in the caller after the
    batch drains. [chunk] fixes the number of items per pool job;
    unset, items are split into a few chunks per lane. [chunk:1] makes
    every item an independently stealable job — the right trade for
    heavy, unevenly sized items. The result never depends on [chunk]. *)

val parallel_map_array : t -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array

val parallel_iter : t -> ?chunk:int -> ('a -> unit) -> 'a list -> unit

val parallel_for : t -> ?chunk:int -> int -> (int -> unit) -> unit
(** [parallel_for t n f] runs [f 0 .. f (n-1)], fanned out in contiguous
    index chunks. With [jobs <= 1] it is a plain ascending [for] loop.
    [f] must tolerate concurrent invocations on distinct indices (write
    to disjoint slots, or only to atomics). *)

type batch
(** A set of thunks submitted together; settled by {!await}. *)

val submit : t -> (unit -> unit) array -> batch
(** Enqueue every thunk and return without waiting. Thunks may begin
    running (on worker domains) before [submit] returns. *)

val await : t -> batch -> unit
(** Block until every thunk of the batch has completed, helping drain
    the pool's shared queue while waiting (so [await] from inside a pool
    task cannot deadlock, and an idle waiter speeds other batches). If
    any thunk raised, the first exception by completion time is
    re-raised here. Each batch must be awaited at most once. *)

type job_error =
  | Exn of exn * Printexc.raw_backtrace
      (** The job raised; counted under [pool.job_exceptions]. *)
  | Timed_out
      (** The job was never started because the batch deadline had
          passed; counted under [pool.job_timeouts]. *)

exception Job_timeout
(** Raised by {!raise_job_error} for a {!Timed_out} job. *)

val map_results :
  t -> ?chunk:int -> ?timeout_ms:float -> ('a -> 'b) -> 'a list -> ('b, job_error) result list
(** Order-preserving map with job-level fault capture: every item runs
    to completion (or is skipped past the deadline) and yields its own
    [Ok]/[Error] — no item's failure aborts the batch, and the result
    list is identical at any [jobs] setting when [f] is pure. The
    [timeout_ms] deadline (from call entry) is cooperative: it is
    checked before each item starts, so a pathological item already
    running is not preempted, but no further work is admitted once the
    deadline passes. *)

val raise_job_error : job_error -> 'a
(** Re-raise a captured error: the original exception with its
    backtrace, or {!Job_timeout}. *)

val shutdown : t -> unit
(** Signal workers to exit and join them. Only needed for pools made
    with [create]; shared pools live for the process. *)
