type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing --- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else begin
    let s = Printf.sprintf "%.17g" f in
    (* keep the float-ness visible so it reparses as Float, not Int *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"
  end

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s -> escape buf s
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            go item)
          items;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            escape buf k;
            Buffer.add_char buf ':';
            go v)
          fields;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* --- parsing --- *)

exception Fail of string

let parse input =
  let n = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Fail (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %C, found %C" c c')
    | None -> fail (Printf.sprintf "expected %C, found end of input" c)
  in
  let skip_ws () =
    while
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          true
      | _ -> false
    do
      ()
    done
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub input !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let utf8_add buf cp =
    (* encode a Unicode code point as UTF-8 bytes *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let s = String.sub input !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ s) with
    | Some v -> v
    | None -> fail (Printf.sprintf "bad \\u escape %S" s)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' ->
          advance ();
          Buffer.contents buf
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'u' ->
                  let cp = hex4 () in
                  (* combine a surrogate pair when one follows *)
                  if cp >= 0xd800 && cp <= 0xdbff && !pos + 6 <= n
                     && input.[!pos] = '\\'
                     && input.[!pos + 1] = 'u'
                  then begin
                    pos := !pos + 2;
                    let lo = hex4 () in
                    if lo >= 0xdc00 && lo <= 0xdfff then
                      utf8_add buf
                        (0x10000 + ((cp - 0xd800) lsl 10) + (lo - 0xdc00))
                    else begin
                      utf8_add buf cp;
                      utf8_add buf lo
                    end
                  end
                  else utf8_add buf cp
              | c -> fail (Printf.sprintf "bad escape \\%c" c));
              loop ())
      | Some c when Char.code c < 0x20 -> fail "raw control byte in string"
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let consume p =
      while (match peek () with Some c -> p c | None -> false) do
        advance ()
      done
    in
    if peek () = Some '-' then advance ();
    consume (fun c -> c >= '0' && c <= '9');
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      consume (fun c -> c >= '0' && c <= '9')
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        consume (fun c -> c >= '0' && c <= '9')
    | _ -> ());
    let s = String.sub input start (!pos - start) in
    if !is_float then
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" s)
    else
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> (
          (* an integer too wide for 63 bits still parses as a float *)
          match float_of_string_opt s with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "bad number %S" s))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg

(* --- accessors --- *)

let kind = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | String _ -> "string"
  | List _ -> "list"
  | Obj _ -> "object"

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Float a, Float b -> Float.equal a b
  | String a, String b -> String.equal a b
  | List a, List b -> List.equal equal a b
  | Obj a, Obj b ->
      let keys fields = List.sort_uniq compare (List.map fst fields) in
      let ka = keys a and kb = keys b in
      List.equal String.equal ka kb
      && List.for_all
           (fun k ->
             match (List.assoc_opt k a, List.assoc_opt k b) with
             | Some va, Some vb -> equal va vb
             | _ -> false)
           ka
  | _ -> false
