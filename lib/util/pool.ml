(* A fixed-size work pool over OCaml 5 domains.

   Domains are spawned once at pool creation and park on a condition
   variable; work arrives as thunks on a shared queue guarded by a
   single mutex. A caller submitting a batch participates in draining
   the queue while it waits ("helping"), which makes nested
   [parallel_map] calls from inside a worker deadlock-free: every
   blocked submitter is itself a consumer, so a non-empty queue always
   has at least one thread able to run it. *)

module Obs = Hoiho_obs.Obs

(* scheduler-level metrics: total thunks queued, the deepest the shared
   queue ever got, and tasks a blocked submitter ran itself while
   helping drain its batch.  Scheduling-dependent by nature — unlike
   the rx/ncsel/pipeline work counters these are NOT expected to be
   identical across HOIHO_JOBS settings. *)
let c_submitted = Obs.counter "pool.jobs_submitted"
let c_steals = Obs.counter "pool.helping_steals"
let g_depth = Obs.gauge "pool.queue_depth_hwm"
let c_timeouts = Obs.counter "pool.job_timeouts"
let c_job_exns = Obs.counter "pool.job_exceptions"

type t = {
  jobs : int;  (* total parallelism including the calling thread *)
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable closing : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () =
  match Sys.getenv_opt "HOIHO_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | _ -> 1)
  | None -> max 1 (Domain.recommended_domain_count () - 1)

let jobs t = t.jobs

let rec worker t =
  Mutex.lock t.mutex;
  let rec wait () =
    if Queue.is_empty t.queue && not t.closing then begin
      Condition.wait t.nonempty t.mutex;
      wait ()
    end
  in
  wait ();
  if Queue.is_empty t.queue then
    (* closing and drained *)
    Mutex.unlock t.mutex
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    task ();
    worker t
  end

let create ?jobs () =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      closing = false;
      workers = [];
    }
  in
  (* the submitting thread is one of the [jobs] lanes *)
  t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.closing <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

(* a batch of tasks submitted together; completion is tracked under the
   pool mutex so the submitter can sleep on [finished] *)
type batch = {
  size : int;
  mutable pending : int;
  finished : Condition.t;
  mutable error : (exn * Printexc.raw_backtrace) option;
}

(* non-blocking half of a batch: enqueue every thunk and wake the
   workers, but return to the caller immediately. The caller settles the
   batch later with [await]; between the two it is free to do unrelated
   work (or submit further batches), which is how a stage can overlap
   its own tail with the next stage's head. *)
let submit t (thunks : (unit -> unit) array) =
  let b =
    {
      size = Array.length thunks;
      pending = Array.length thunks;
      finished = Condition.create ();
      error = None;
    }
  in
  if b.size > 0 then begin
    (* jobs carry the span context of their submission site: spans a job
       opens then nest under the submitting span on ANY executing
       domain, which keeps the trace tree jobs-invariant without every
       fan-out site having to thread a parent through by hand *)
    let ctx = Hoiho_obs.Trace.capture () in
    let wrapped thunk () =
      (try Hoiho_obs.Trace.with_ctx ctx thunk
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock t.mutex;
         if b.error = None then b.error <- Some (e, bt);
         Mutex.unlock t.mutex);
      Mutex.lock t.mutex;
      b.pending <- b.pending - 1;
      if b.pending = 0 then Condition.broadcast b.finished;
      Mutex.unlock t.mutex
    in
    Mutex.lock t.mutex;
    Array.iter (fun th -> Queue.push (wrapped th) t.queue) thunks;
    Obs.add c_submitted b.size;
    Obs.observe_gauge g_depth (Queue.length t.queue);
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex
  end;
  b

(* the batch span is scheduling-dependent by nature (it only exists when
   jobs > 1, and its duration reflects queue contention), so it carries
   the "sched" category and is exempt — like the pool.* counters — from
   the cross-jobs determinism contract (DESIGN.md §10) *)
let await t b =
  if b.size = 0 then ()
  else
    Hoiho_obs.Trace.with_span ~cat:"sched" "pool.batch"
      ~attrs:[ ("thunks", string_of_int b.size) ]
    @@ fun () ->
    Mutex.lock t.mutex;
    (* help drain the queue until this batch completes; only sleep when
       there is nothing at all to run. The queue is shared, so a blocked
       submitter may execute thunks from other batches — that is the
       point: every waiter is a worker. *)
    let rec help () =
      if b.pending > 0 then
        match Queue.take_opt t.queue with
        | Some task ->
            Mutex.unlock t.mutex;
            Obs.incr c_steals;
            task ();
            Mutex.lock t.mutex;
            help ()
        | None ->
            Condition.wait b.finished t.mutex;
            help ()
    in
    help ();
    let error = b.error in
    Mutex.unlock t.mutex;
    match error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()

let run_batch t thunks = await t (submit t thunks)

(* split [0, n) into contiguous chunks — an explicit [chunk] size, or a
   few chunks per lane so per-task queueing overhead stays small
   relative to work. [chunk:1] maximizes stealability: every item is an
   independent job, the right trade when items are heavy and unevenly
   sized (suffix groups, candidate evaluations). *)
let chunk_ranges ?chunk n jobs =
  let size =
    match chunk with
    | Some c -> max 1 c
    | None ->
        let target = jobs * 4 in
        max 1 ((n + target - 1) / target)
  in
  let rec go lo acc =
    if lo >= n then List.rev acc
    else
      let hi = min n (lo + size) in
      go hi ((lo, hi) :: acc)
  in
  go 0 []

let parallel_for t ?chunk n f =
  if t.jobs <= 1 || n <= 1 then
    for i = 0 to n - 1 do
      f i
    done
  else
    let thunks =
      chunk_ranges ?chunk n t.jobs
      |> List.map (fun (lo, hi) () ->
             for i = lo to hi - 1 do
               f i
             done)
      |> Array.of_list
    in
    run_batch t thunks

let parallel_map_array t ?chunk f arr =
  let n = Array.length arr in
  if t.jobs <= 1 || n <= 1 then Array.map f arr
  else begin
    let results = Array.make n None in
    parallel_for t ?chunk n (fun i -> results.(i) <- Some (f arr.(i)));
    Array.map
      (function Some v -> v | None -> assert false (* run_batch raised *))
      results
  end

let parallel_map t ?chunk f xs =
  Array.to_list (parallel_map_array t ?chunk f (Array.of_list xs))

let parallel_iter t ?chunk f xs =
  ignore (parallel_map_array t ?chunk (fun x -> f x) (Array.of_list xs))

(* job-level fault capture: unlike [parallel_map], whose batch aborts
   on the first exception by completion time (a scheduling-dependent
   choice), [map_results] runs EVERY item to completion and returns a
   per-item verdict in input order. Callers that want fail-fast
   semantics with deterministic attribution re-raise the first [Error]
   in input order — identical at any [jobs] setting. *)
type job_error =
  | Exn of exn * Printexc.raw_backtrace
  | Timed_out

exception Job_timeout

let run_one deadline f x =
  match deadline with
  | Some d when Obs.now_ms () > d ->
      Obs.incr c_timeouts;
      Error Timed_out
  | _ -> (
      try Ok (f x)
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        Obs.incr c_job_exns;
        Error (Exn (e, bt)))

let map_results t ?chunk ?timeout_ms f xs =
  (* the timeout is cooperative: the deadline is checked before each
     item starts, never preempting one mid-flight — an item that began
     before the deadline runs to completion. This bounds a batch of n
     items at deadline + one item's latency without the portability
     tar pit of cancelling a running domain. *)
  let deadline = Option.map (fun ms -> Obs.now_ms () +. ms) timeout_ms in
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let results = Array.make n None in
  let exec i = results.(i) <- Some (run_one deadline f arr.(i)) in
  if t.jobs <= 1 || n <= 1 then
    for i = 0 to n - 1 do
      exec i
    done
  else begin
    let thunks =
      chunk_ranges ?chunk n t.jobs
      |> List.map (fun (lo, hi) () ->
             for i = lo to hi - 1 do
               exec i
             done)
      |> Array.of_list
    in
    (* exec never raises, so run_batch's own error channel stays idle *)
    run_batch t thunks
  end;
  Array.to_list
    (Array.map (function Some r -> r | None -> assert false) results)

let raise_job_error = function
  | Exn (e, bt) -> Printexc.raise_with_backtrace e bt
  | Timed_out -> raise Job_timeout

(* shared pools, one per size, spawned on first use and reused for the
   process lifetime *)
let shared : (int, t) Hashtbl.t = Hashtbl.create 4
let shared_mutex = Mutex.create ()

let get jobs =
  let jobs = max 1 jobs in
  Mutex.lock shared_mutex;
  let t =
    match Hashtbl.find_opt shared jobs with
    | Some t -> t
    | None ->
        let t = create ~jobs () in
        Hashtbl.replace shared jobs t;
        t
  in
  Mutex.unlock shared_mutex;
  t
