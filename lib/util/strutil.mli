(** String and hostname-token helpers shared across the repository. *)

val is_alpha : char -> bool
(** Lowercase or uppercase ASCII letter. *)

val is_digit : char -> bool

val is_alnum : char -> bool

val lowercase : string -> string
(** ASCII lowercasing. *)

val normalize_hostname : string -> string
(** Canonical form for hostname comparison and matching: ASCII
    lowercase, every whitespace character removed (operator typos and
    copy-paste artifacts embed spaces and tabs mid-name), and one
    trailing dot — the DNS root label — stripped. Idempotent. *)

val has_empty_dns_label : string -> bool
(** True when the string is empty, starts or ends with a dot, or
    contains consecutive dots — i.e. splitting on ['.'] would yield an
    empty label. Malformed names like ["a..b.net"] must be skipped, not
    force-fit, by label-positional methods (DRoP-style). *)

val split_on : char -> string -> string list
(** Like [String.split_on_char] but drops empty fields. *)

val split_labels : string -> string list
(** Split a hostname into dot-separated labels, dropping empties. *)

val split_punct : string -> string list
(** Split a string on any non-alphanumeric character, dropping empties.
    ["xe-0-0.ash1"] becomes [["xe"; "0"; "0"; "ash1"]]. *)

val alpha_runs : string -> string list
(** Maximal runs of alphabetic characters. ["ash1x"] gives [["ash"; "x"]]. *)

val strip_trailing_digits : string -> string
(** ["lhr15"] becomes ["lhr"]; a purely numeric string becomes [""]. *)

val strip_leading_digits : string -> string

val has_suffix : suffix:string -> string -> bool

val has_prefix : prefix:string -> string -> bool

val drop_suffix : suffix:string -> string -> string option
(** [drop_suffix ~suffix s] removes [suffix] (and a preceding dot if
    present) from the end of [s]; [None] if [s] does not end with it. *)

val is_subsequence : string -> string -> bool
(** [is_subsequence small big]: all chars of [small] occur in [big] in
    order. *)

val longest_common_run : string -> string -> int
(** Length of the longest substring common to both arguments. *)

val join : string -> string list -> string
(** [join sep parts] is [String.concat sep parts]. *)

val chunks_of_classes : string -> [ `Alpha of string | `Digit of string | `Other of string ] list
(** Decompose into maximal runs of letters, digits, and other characters,
    preserving order: ["ash1-b"] gives
    [[`Alpha "ash"; `Digit "1"; `Other "-"; `Alpha "b"]]. *)
