(* Figure-13-style walkthrough of regex generation: watch one suffix's
   candidate pool evolve through the four phases — base regexes, digit
   merging, character-class embedding, and regex-set building — with
   TP/FP/FN/UNK, ATP and PPV for each candidate.

   Run with: dune exec examples/regex_phases.exe [suffix]
   (default suffix: zayo.com) *)

module Apparent = Hoiho.Apparent
module Regen = Hoiho.Regen
module Evalx = Hoiho.Evalx
module Ncsel = Hoiho.Ncsel
module Cand = Hoiho.Cand

let show_cands consist db samples label cands =
  Printf.printf "--- %s (%d candidates) ---\n" label (List.length cands);
  let scored =
    List.map
      (fun cand -> (cand, Evalx.eval_cand_counts consist db cand samples))
      cands
  in
  let ranked =
    List.sort
      (fun (_, a) (_, b) -> compare (Evalx.atp b) (Evalx.atp a))
      scored
  in
  List.iteri
    (fun i ((cand : Cand.t), counts) ->
      if i < 8 then
        Printf.printf
          "  tp=%3d fp=%3d fn=%3d unk=%3d atp=%4d ppv=%3.0f%%  %s\n"
          counts.Evalx.tp counts.Evalx.fp counts.Evalx.fn counts.Evalx.unk
          (Evalx.atp counts)
          (100.0 *. Evalx.ppv counts)
          cand.Cand.source)
    ranked;
  if List.length ranked > 8 then
    Printf.printf "  ... and %d more\n" (List.length ranked - 8)

let () =
  let suffix = if Array.length Sys.argv > 1 then Sys.argv.(1) else "zayo.com" in
  let dataset, _ = Hoiho_netsim.Generate.generate (Hoiho_netsim.Presets.tiny ()) in
  let consist = Hoiho.Consist.create dataset in
  let db = Hoiho_geodb.Db.default () in
  let routers =
    match List.assoc_opt suffix (Hoiho_itdk.Dataset.by_suffix dataset) with
    | Some rs -> rs
    | None -> failwith (Printf.sprintf "suffix %s not in dataset" suffix)
  in
  let samples = Apparent.build_samples consist db ~suffix routers in
  let tagged =
    List.filter (fun (s : Apparent.sample) -> s.Apparent.tags <> []) samples
  in
  Printf.printf "%s: %d hostnames, %d with apparent geohints\n\n" suffix
    (List.length samples) (List.length tagged);

  let p1 = Regen.phase1 ~suffix tagged in
  show_cands consist db samples "phase 1: base regexes" p1;

  let p2 = Regen.phase2 p1 in
  show_cands consist db samples "phase 2: merged (\\d+ -> \\d*)" p2;

  let pool = Cand.dedup (p1 @ p2) in
  let p3 = Regen.phase3 samples pool in
  show_cands consist db samples "phase 3: embedded character classes" p3;

  let all = Cand.dedup (pool @ p3) in
  match Ncsel.build consist db all samples with
  | None -> print_endline "no naming convention could be built"
  | Some nc ->
      Printf.printf "--- phase 4: selected naming convention ---\n";
      List.iter
        (fun (c : Cand.t) -> Printf.printf "  %s\n" c.Cand.source)
        nc.Ncsel.cands;
      Printf.printf
        "  tp=%d fp=%d fn=%d unk=%d atp=%d ppv=%.0f%% unique hints=%d -> %s\n"
        nc.Ncsel.counts.Evalx.tp nc.Ncsel.counts.Evalx.fp
        nc.Ncsel.counts.Evalx.fn nc.Ncsel.counts.Evalx.unk
        (Evalx.atp nc.Ncsel.counts)
        (100.0 *. Evalx.ppv nc.Ncsel.counts)
        nc.Ncsel.unique_hints
        (match Ncsel.classify nc with
        | Ncsel.Good -> "good"
        | Ncsel.Promising -> "promising"
        | Ncsel.Poor -> "poor")
