(* `dune build @check` health smoke: boot the real daemon with a tight
   SLO file and an access log, drive the health state machine with
   injected fault load over a real socket, and leave the observability
   artifacts behind for CI to upload.

     health_check CLI_EXE MODEL ACCESS_LOG SLO_SNAPSHOT

   Asserts, in order:
   - a clean daemon under the tight SLO answers /healthz 200 "ok";
   - `hoiho health URL` (the CLI probe) exits 0 against it;
   - a burst of injected faults (404 storms tripping the error_rate
     objective) flips /healthz to 503 with the failing objective named
     in the body, and /debug/slo reports state "failing" (snapshot
     saved to SLO_SNAPSHOT);
   - the CLI probe exits 1 while failing;
   - once the fault load stops, the bad requests age out of the
     sliding window and /healthz recovers to 200 with no restart;
   - after SIGTERM, the access log holds one strict-JSON line per
     request, faults included. *)

let die fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("health_check: FAIL: " ^ m);
      exit 1)
    fmt

(* --- minimal HTTP client (Connection: close per request) --- *)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
  in
  go 0

let read_to_eof fd =
  let buf = Bytes.create 4096 and b = Buffer.create 1024 in
  let rec go () =
    match Unix.read fd buf 0 4096 with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes b buf 0 n;
        go ()
    | exception Unix.Unix_error (EINTR, _, _) -> go ()
    | exception
        Unix.Unix_error ((EAGAIN | EWOULDBLOCK | ETIMEDOUT | ECONNRESET), _, _)
      ->
        ()
  in
  go ();
  Buffer.contents b

let request port target =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      (try
         Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port));
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0
       with Unix.Unix_error (e, _, _) ->
         die "connect to 127.0.0.1:%d: %s" port (Unix.error_message e));
      write_all fd
        (Printf.sprintf "GET %s HTTP/1.1\r\nHost: c\r\nConnection: close\r\n\r\n"
           target);
      let raw = read_to_eof fd in
      let status =
        if String.length raw >= 12 && String.sub raw 0 9 = "HTTP/1.1 " then
          Option.value ~default:0 (int_of_string_opt (String.sub raw 9 3))
        else 0
      in
      let body =
        let n = String.length raw in
        let rec find i =
          if i + 3 >= n then None
          else if
            raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
            && raw.[i + 3] = '\n'
          then Some (i + 4)
          else find (i + 1)
        in
        match find 0 with Some i -> String.sub raw i (n - i) | None -> ""
      in
      (status, body))

let contains haystack needle =
  let hn = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= hn && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* --- daemon stdout parsing (same format serve_check pins) --- *)

let read_line_deadline fd deadline =
  let b = Buffer.create 128 in
  let one = Bytes.create 1 in
  let rec go () =
    let now = Unix.gettimeofday () in
    if now > deadline then die "timed out waiting for daemon output";
    match Unix.select [ fd ] [] [] (deadline -. now) with
    | [], _, _ -> die "timed out waiting for daemon output"
    | _ -> (
        match Unix.read fd one 0 1 with
        | 0 -> die "daemon closed stdout before printing its port"
        | _ ->
            if Bytes.get one 0 = '\n' then Buffer.contents b
            else begin
              Buffer.add_char b (Bytes.get one 0);
              go ()
            end
        | exception Unix.Unix_error (EINTR, _, _) -> go ())
  in
  go ()

let parse_port line =
  match String.index_opt line '(' with
  | None -> None
  | Some paren -> (
      let before = String.trim (String.sub line 0 paren) in
      match String.rindex_opt before ':' with
      | None -> None
      | Some i ->
          int_of_string_opt
            (String.trim (String.sub before (i + 1) (String.length before - i - 1)))
      )

let run_probe cli url =
  let pid =
    Unix.create_process cli
      [| cli; "health"; url |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED n -> n
  | _, _ -> die "health probe died on a signal"

let () =
  let cli, model, access_path, snapshot_path =
    match Sys.argv with
    | [| _; cli; model; access; snap |] -> (cli, model, access, snap)
    | _ -> die "usage: health_check CLI_EXE MODEL ACCESS_LOG SLO_SNAPSHOT"
  in
  let cli = if String.contains cli '/' then cli else "./" ^ cli in
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  (* a tight SLO: a short 2 s window so the state machine transitions
     fast, and an error_rate budget any 404 storm tramples *)
  let slo_path = Filename.temp_file "hoiho_health_slo" ".json" in
  let oc = open_out slo_path in
  output_string oc
    {|{"window_s": 2, "buckets": 4,
       "objectives": [
         {"metric": "error_rate", "max": 0.02, "fail_ratio": 2.0},
         {"metric": "latency_p99_ms", "max": 5000, "fail_ratio": 3.0}]}|};
  close_out oc;
  (try Sys.remove access_path with Sys_error _ -> ());
  let out_r, out_w = Unix.pipe ~cloexec:false () in
  let pid =
    Unix.create_process cli
      [| cli; "serve"; "--model"; model; "--port"; "0"; "--jobs"; "2";
         "--slo"; slo_path; "--access-log"; access_path |]
      Unix.stdin out_w Unix.stderr
  in
  Unix.close out_w;
  let deadline = Unix.gettimeofday () +. 120.0 in
  let rec find_port tries =
    if tries = 0 then die "daemon never printed its bound port";
    let line = read_line_deadline out_r deadline in
    match parse_port line with Some p -> p | None -> find_port (tries - 1)
  in
  let port = find_port 5 in
  let fail_daemon fmt =
    Printf.ksprintf
      (fun m ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid);
        die "%s" m)
      fmt
  in
  let url = Printf.sprintf "http://127.0.0.1:%d" port in
  (* phase 1: clean daemon is healthy, CLI probe agrees *)
  let status, body = request port "/healthz" in
  if status <> 200 || body <> "ok\n" then
    fail_daemon "clean /healthz: status %d body %S" status body;
  (match run_probe cli url with
  | 0 -> ()
  | n -> fail_daemon "healthy probe exited %d (want 0)" n);
  (* phase 2: fault injection — a 404 storm burns the error budget *)
  let n_faults = 40 in
  for _ = 1 to n_faults do
    ignore (request port "/chaos-nonexistent")
  done;
  let status, body = request port "/healthz" in
  if status <> 503 then
    fail_daemon "under fault load /healthz: status %d body %S (want 503)"
      status body;
  if not (contains body "failing:") then
    fail_daemon "503 body does not render the failing state: %S" body;
  if not (contains body "error_rate") then
    fail_daemon "503 body does not name the burned objective: %S" body;
  (* snapshot /debug/slo while failing — the CI artifact *)
  let status, slo_body = request port "/debug/slo" in
  if status <> 200 then fail_daemon "/debug/slo: status %d" status;
  if not (contains slo_body "\"state\":\"failing\"") then
    fail_daemon "/debug/slo does not report failing: %S" slo_body;
  let oc = open_out snapshot_path in
  output_string oc slo_body;
  close_out oc;
  (match run_probe cli url with
  | 1 -> ()
  | n -> fail_daemon "failing probe exited %d (want 1)" n);
  (* phase 3: stop the fault load; the bad requests age out of the 2 s
     window and the daemon recovers with no restart *)
  let rec await_recovery () =
    if Unix.gettimeofday () > deadline then
      fail_daemon "daemon never recovered after the fault load stopped";
    let status, body = request port "/healthz" in
    if status = 200 && body = "ok\n" then ()
    else begin
      Unix.sleepf 0.3;
      await_recovery ()
    end
  in
  await_recovery ();
  (match run_probe cli url with
  | 0 -> ()
  | n -> fail_daemon "recovered probe exited %d (want 0)" n);
  (* clean shutdown, then audit the access log *)
  Unix.kill pid Sys.sigterm;
  let rec wait_exit () =
    if Unix.gettimeofday () > deadline then begin
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] pid);
      die "daemon did not exit within the deadline after SIGTERM"
    end;
    match Unix.waitpid [ WNOHANG ] pid with
    | 0, _ ->
        Unix.sleepf 0.05;
        wait_exit ()
    | _, st -> st
  in
  (match wait_exit () with
  | WEXITED 0 -> ()
  | WEXITED n -> die "daemon exited %d after SIGTERM (want 0)" n
  | WSIGNALED s -> die "daemon died on signal %d instead of handling SIGTERM" s
  | WSTOPPED s -> die "daemon stopped on signal %d" s);
  (try Sys.remove slo_path with Sys_error _ -> ());
  let ic = open_in_bin access_path in
  let raw = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' raw) in
  if List.length lines < n_faults + 4 then
    die "access log has %d lines, expected at least %d" (List.length lines)
      (n_faults + 4);
  List.iter
    (fun line ->
      if not (String.length line > 1 && line.[0] = '{'
              && line.[String.length line - 1] = '}') then
        die "access log line is not a JSON object: %S" line;
      if not (contains line "\"request_id\":") then
        die "access log line lacks request_id: %S" line)
    lines;
  if not (contains raw "\"status\":404") then
    die "access log never recorded the injected 404 faults";
  if not (contains raw "\"endpoint\":\"GET /healthz\"") then
    die "access log never recorded a health probe";
  if not (contains raw "\"degraded\":true") then
    die "access log never flagged a request served while degraded";
  Printf.printf
    "health_check: OK — healthz 200 -> 503 (error_rate named) -> 200 on port \
     %d, CLI probe exit codes 0/1/0, %d access-log lines audited\n"
    port (List.length lines)
