(* `dune build @check` serve smoke: boot the real daemon binary on an
   ephemeral port, drive it over a real socket, and shut it down the
   way an init system would.

     serve_check CLI_EXE MODEL EXPECTED

   Asserts, in order:
   - the daemon prints its bound port and answers GET /healthz;
   - every hostname of the pinned golden subset (EXPECTED, the same
     file the apply smoke diffs against) is served with the pinned
     answer — the socket path agrees with the apply path;
   - GET /metrics parses as OpenMetrics enough to matter: hoiho_
     samples present, "# EOF" terminator last;
   - SIGTERM produces a clean exit: status 0 and the shutdown line on
     stdout, never a signal death. *)

let die fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("serve_check: FAIL: " ^ m);
      exit 1)
    fmt

(* --- minimal HTTP client (Connection: close per request) --- *)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
  in
  go 0

let read_to_eof fd =
  let buf = Bytes.create 4096 and b = Buffer.create 1024 in
  let rec go () =
    match Unix.read fd buf 0 4096 with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes b buf 0 n;
        go ()
    | exception Unix.Unix_error (EINTR, _, _) -> go ()
    | exception
        Unix.Unix_error ((EAGAIN | EWOULDBLOCK | ETIMEDOUT | ECONNRESET), _, _)
      ->
        ()
  in
  go ();
  Buffer.contents b

let request port target =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      (try
         Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port));
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0
       with Unix.Unix_error (e, _, _) ->
         die "connect to 127.0.0.1:%d: %s" port (Unix.error_message e));
      write_all fd
        (Printf.sprintf "GET %s HTTP/1.1\r\nHost: c\r\nConnection: close\r\n\r\n"
           target);
      let raw = read_to_eof fd in
      let status =
        if String.length raw >= 12 && String.sub raw 0 9 = "HTTP/1.1 " then
          Option.value ~default:0 (int_of_string_opt (String.sub raw 9 3))
        else 0
      in
      let body =
        let n = String.length raw in
        let rec find i =
          if i + 3 >= n then None
          else if
            raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
            && raw.[i + 3] = '\n'
          then Some (i + 4)
          else find (i + 1)
        in
        match find 0 with Some i -> String.sub raw i (n - i) | None -> ""
      in
      (status, body))

let contains haystack needle =
  let hn = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= hn && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* --- daemon stdout parsing --- *)

let read_line_deadline fd deadline =
  let b = Buffer.create 128 in
  let one = Bytes.create 1 in
  let rec go () =
    let now = Unix.gettimeofday () in
    if now > deadline then die "timed out waiting for daemon output";
    match Unix.select [ fd ] [] [] (deadline -. now) with
    | [], _, _ -> die "timed out waiting for daemon output"
    | _ -> (
        match Unix.read fd one 0 1 with
        | 0 -> die "daemon closed stdout before printing its port"
        | _ ->
            if Bytes.get one 0 = '\n' then Buffer.contents b
            else begin
              Buffer.add_char b (Bytes.get one 0);
              go ()
            end
        | exception Unix.Unix_error (EINTR, _, _) -> go ())
  in
  go ()

(* "hoiho: serving MODEL on HOST:PORT (jobs=N)" *)
let parse_port line =
  match String.index_opt line '(' with
  | None -> None
  | Some paren -> (
      let before = String.trim (String.sub line 0 paren) in
      match String.rindex_opt before ':' with
      | None -> None
      | Some i ->
          int_of_string_opt
            (String.trim (String.sub before (i + 1) (String.length before - i - 1)))
      )

(* EXPECTED lines are apply's "%-50s ANSWER\tCONF" format; the daemon
   speaks "ANSWER\tCONF" with "(no geolocation)" spelled "-", so map
   the prefix and keep the confidence column *)
let parse_expected path =
  let ic = open_in path in
  let lines = ref [] in
  let nog = "(no geolocation)" in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then begin
         match String.index_opt line ' ' with
         | None -> die "malformed expected line %S" line
         | Some i ->
             let h = String.sub line 0 i in
             let a = String.trim (String.sub line i (String.length line - i)) in
             let a =
               if
                 String.length a >= String.length nog
                 && String.sub a 0 (String.length nog) = nog
               then "-" ^ String.sub a (String.length nog)
                            (String.length a - String.length nog)
               else a
             in
             lines := (h, a) :: !lines
       end
     done
   with End_of_file -> close_in_noerr ic);
  List.rev !lines

let () =
  let cli, model, expected =
    match Sys.argv with
    | [| _; cli; model; expected |] -> (cli, model, expected)
    | _ -> die "usage: serve_check CLI_EXE MODEL EXPECTED"
  in
  (* dune hands over a bare filename when the exe sits in the rule's
     own directory; exec needs a path, not a PATH lookup *)
  let cli = if String.contains cli '/' then cli else "./" ^ cli in
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  let golden = parse_expected expected in
  if golden = [] then die "expected file %s is empty" expected;
  let out_r, out_w = Unix.pipe ~cloexec:false () in
  let pid =
    Unix.create_process cli
      [| cli; "serve"; "--model"; model; "--port"; "0"; "--jobs"; "2" |]
      Unix.stdin out_w Unix.stderr
  in
  Unix.close out_w;
  let deadline = Unix.gettimeofday () +. 60.0 in
  (* the port line is first, but tolerate any preamble *)
  let rec find_port tries =
    if tries = 0 then die "daemon never printed its bound port";
    let line = read_line_deadline out_r deadline in
    match parse_port line with Some p -> p | None -> find_port (tries - 1)
  in
  let port = find_port 5 in
  let fail_daemon fmt =
    Printf.ksprintf
      (fun m ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid);
        die "%s" m)
      fmt
  in
  (* healthz *)
  let status, body = request port "/healthz" in
  if status <> 200 || body <> "ok\n" then
    fail_daemon "/healthz: status %d body %S" status body;
  (* golden subset over the socket *)
  List.iter
    (fun (h, answer) ->
      let status, body = request port ("/geolocate?h=" ^ h) in
      if status <> 200 then fail_daemon "/geolocate?h=%s: status %d" h status;
      if body <> answer ^ "\n" then
        fail_daemon "/geolocate?h=%s: served %S, pinned %S" h body answer)
    golden;
  (* metrics exposition *)
  let status, body = request port "/metrics" in
  if status <> 200 then fail_daemon "/metrics: status %d" status;
  if not (contains body "hoiho_net_requests_total") then
    fail_daemon "/metrics: no hoiho_net_requests_total sample";
  if
    not
      (String.length body >= 6
      && String.sub body (String.length body - 6) 6 = "# EOF\n")
  then fail_daemon "/metrics: missing \"# EOF\" terminator";
  (* clean shutdown on SIGTERM *)
  Unix.kill pid Sys.sigterm;
  let rec wait_exit () =
    if Unix.gettimeofday () > deadline then begin
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] pid);
      die "daemon did not exit within the deadline after SIGTERM"
    end;
    match Unix.waitpid [ WNOHANG ] pid with
    | 0, _ ->
        Unix.sleepf 0.05;
        wait_exit ()
    | _, st -> st
  in
  (match wait_exit () with
  | WEXITED 0 -> ()
  | WEXITED n -> die "daemon exited %d after SIGTERM (want 0)" n
  | WSIGNALED s -> die "daemon died on signal %d instead of handling SIGTERM" s
  | WSTOPPED s -> die "daemon stopped on signal %d" s);
  let rest = read_to_eof out_r in
  if not (contains rest "shut down cleanly") then
    die "daemon exited 0 but without the clean-shutdown line (got %S)" rest;
  Printf.printf
    "serve_check: OK — %d golden hostnames served on port %d, metrics \
     exposition complete, clean SIGTERM shutdown\n"
    (List.length golden) port
