(* CI smoke assertion: a metrics snapshot written by `hoiho learn
   --metrics` must be non-empty — a nonzero rx.exec_calls counter,
   per-stage duration histograms with samples, and pool counters
   present. Exits nonzero with a diagnostic otherwise. *)

let read_all path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* find `"key": <int>` in the flat JSON the obs layer emits *)
let find_int text key =
  let needle = Printf.sprintf "\"%s\": " key in
  let nlen = String.length needle and tlen = String.length text in
  let rec scan i =
    if i + nlen > tlen then None
    else if String.sub text i nlen = needle then begin
      let j = ref (i + nlen) in
      let start = !j in
      while !j < tlen && (text.[!j] = '-' || (text.[!j] >= '0' && text.[!j] <= '9')) do
        incr j
      done;
      int_of_string_opt (String.sub text start (!j - start))
    end
    else scan (i + 1)
  in
  scan 0

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else "metrics.json" in
  let text = read_all path in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  (match find_int text "rx.exec_calls" with
  | Some n when n > 0 -> ()
  | Some n -> fail "rx.exec_calls is %d, expected > 0" n
  | None -> fail "rx.exec_calls counter missing");
  (match find_int text "pipeline.suffix_groups" with
  | Some n when n > 0 -> ()
  | _ -> fail "pipeline.suffix_groups counter missing or zero");
  List.iter
    (fun key ->
      if find_int text key = None then fail "%s counter missing" key)
    [ "ncsel.candidates_evaluated"; "pool.jobs_submitted"; "rx.prefilter_skips" ];
  (* every run times at least the whole-run span and one suffix group *)
  if not (String.length text > 0 && find_int text "count" <> None) then
    fail "no histogram samples recorded";
  (* histogram summaries carry the tail quantile since the health work *)
  let contains needle =
    let nlen = String.length needle and tlen = String.length text in
    let rec scan i =
      i + nlen <= tlen && (String.sub text i nlen = needle || scan (i + 1))
    in
    scan 0
  in
  if not (contains "\"p99_ms\"") then fail "histogram summaries lack p99_ms";
  match !failures with
  | [] -> Printf.printf "metrics snapshot %s ok\n" path
  | fs ->
      List.iter (Printf.eprintf "metrics check failed: %s\n") (List.rev fs);
      exit 1
