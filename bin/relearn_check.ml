(* Fixture writer for the relearn smoke in `dune build @check`: batch-
   learn the fixed-seed tiny preset, evolve it one drift epoch, and
   write (a) the epoch-1 model snapshot and (b) the Delta wire events
   turning epoch 1 into epoch 2. The smoke then drives the CLI:
   `hoiho relearn` over these files followed by `hoiho diff-model`,
   with the combined stdout diffed against a checked-in expectation —
   so the whole incremental path (wire decode, dirty-set relearn,
   snapshot splice, model diff rendering) is pinned end to end.

   Usage: relearn_check.exe MODEL_OUT EVENTS_OUT *)

let () =
  let model_out = Sys.argv.(1) and events_out = Sys.argv.(2) in
  let ds1, truth1 =
    Hoiho_netsim.Generate.generate (Hoiho_netsim.Presets.tiny ~seed:42 ())
  in
  let ds2, _ =
    Hoiho_netsim.Evolve.epoch (Hoiho_netsim.Evolve.default ~seed:7) (ds1, truth1)
  in
  let model = Hoiho.Learned_io.of_pipeline (Hoiho.Pipeline.run ds1) in
  Hoiho.Learned_io.save model_out model;
  let events = Hoiho.Delta.events_between ds1 ds2 in
  let oc = open_out_bin events_out in
  output_string oc (Hoiho.Delta.events_to_string events);
  close_out oc;
  Printf.printf "wrote %s (%d suffix models) and %s (%d events)\n" model_out
    (List.length model.Hoiho.Learned_io.suffixes)
    events_out (List.length events)
