(* CI smoke assertion for `dune build @check`: the calibration report
   `hoiho calibrate -p tiny -s 42 -o ...` writes must clear the
   acceptance gates — ECE within 0.15, decile accuracy monotone at the
   default tolerance, a non-trivial ground-truth sample with most
   hostnames answered, and exactly ten deciles. Exits nonzero with a
   diagnostic otherwise. The same JSON file is uploaded as a CI
   artifact, so a gate failure ships its evidence. *)

module Json = Hoiho_util.Json

let read_all path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let () =
  let path =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "calibration_smoke.json"
  in
  let json =
    match Json.parse (read_all path) with
    | Ok j -> j
    | Error e ->
        Printf.eprintf "calibrate_check: %s does not parse: %s\n" path e;
        exit 1
  in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let num key =
    match Json.member key json with
    | Some (Json.Float f) -> Some f
    | Some (Json.Int i) -> Some (float_of_int i)
    | _ -> None
  in
  (match num "total" with
  | Some t when t > 500.0 -> ()
  | Some t -> fail "total is %.0f, expected > 500 ground-truth hostnames" t
  | None -> fail "total missing");
  (match (num "total", num "answered") with
  | Some t, Some a when a *. 2.0 > t -> ()
  | Some t, Some a -> fail "answered %.0f of %.0f: most should be answered" a t
  | _ -> fail "answered missing");
  (match num "ece" with
  | Some e when e <= 0.15 -> ()
  | Some e -> fail "ECE %.4f exceeds the 0.15 acceptance limit" e
  | None -> fail "ece missing");
  (match num "brier" with
  | Some b when b <= 0.25 -> ()
  | Some b -> fail "Brier %.4f is worse than a constant 0.5 guess" b
  | None -> fail "brier missing");
  (match Json.member "monotone" json with
  | Some (Json.Bool true) -> ()
  | Some (Json.Bool false) -> fail "decile accuracy is not monotone"
  | _ -> fail "monotone missing");
  (match Json.member "buckets" json with
  | Some (Json.List l) when List.length l = 10 -> ()
  | Some (Json.List l) -> fail "%d buckets, expected 10" (List.length l)
  | _ -> fail "buckets missing");
  match !failures with
  | [] -> Printf.printf "calibration gates ok: %s\n" path
  | fs ->
      List.iter (fun f -> Printf.eprintf "calibrate_check: %s\n" f) (List.rev fs);
      exit 1
