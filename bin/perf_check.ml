(* CI gate for the parallel learn path (part of `dune build @check`).

   Learns the fixed-seed tiny preset at jobs=1 and jobs=4, best of
   three runs each, and enforces:

   - results and non-pool work counters byte-identical across the two
     settings — the determinism contract, on every host;
   - on hosts with >= 4 cores, parallel learn no slower than
     sequential (5% noise tolerance): the regression this pins down is
     the fine-grained scheduling + allocation work making parallel
     learn a net loss, which is exactly what shipped once before;
   - on smaller hosts real speedup is physically impossible and
     wall-clock gating would flake, so only a catastrophic-overhead
     bound (3x) applies, and the report says which mode ran. *)

module Pipeline = Hoiho.Pipeline
module Generate = Hoiho_netsim.Generate
module Presets = Hoiho_netsim.Presets
module Truth = Hoiho_netsim.Truth
module Obs = Hoiho_obs.Obs

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("perf_check: " ^ msg); exit 1) fmt

let work_counters (s : Obs.snapshot) =
  List.filter
    (fun (name, _) ->
      not (String.length name >= 5 && String.sub name 0 5 = "pool."))
    s.Obs.counters

let () =
  let ds, truth = Generate.generate (Presets.tiny ~seed:42 ()) in
  let db = Truth.db truth in
  let timed jobs =
    Obs.reset ();
    let t0 = Unix.gettimeofday () in
    let p = Pipeline.run ~db ~jobs ds in
    (p, (Unix.gettimeofday () -. t0) *. 1000.0)
  in
  let best_of_3 jobs =
    let p0, ms0 = timed jobs in
    let _, ms1 = timed jobs in
    let _, ms2 = timed jobs in
    (p0, min ms0 (min ms1 ms2))
  in
  let seq, seq_ms = best_of_3 1 in
  let par, par_ms = best_of_3 4 in
  if seq.Pipeline.results <> par.Pipeline.results then
    fail "results differ between jobs=1 and jobs=4";
  if work_counters seq.Pipeline.metrics <> work_counters par.Pipeline.metrics
  then fail "work counters differ between jobs=1 and jobs=4";
  let cores = Domain.recommended_domain_count () in
  let enforced = cores >= 4 in
  if enforced && par_ms > seq_ms *. 1.05 then
    fail "parallel learn slower than sequential on %d cores: jobs=4 %.1f ms vs jobs=1 %.1f ms"
      cores par_ms seq_ms;
  if (not enforced) && par_ms > seq_ms *. 3.0 then
    fail "catastrophic parallel overhead on %d core(s): jobs=4 %.1f ms vs jobs=1 %.1f ms"
      cores par_ms seq_ms;
  Printf.printf
    "perf_check ok: jobs=1 %.1f ms, jobs=4 %.1f ms (%.2fx) on %d core(s), %s; results and counters identical\n"
    seq_ms par_ms (seq_ms /. par_ms) cores
    (if enforced then "par<=seq enforced" else "speedup not enforced (<4 cores)")
