(* hoiho — learn geographic naming conventions from router hostnames.

   Subcommands:
     generate    synthesize an ITDK-style dataset and write it to a file
     learn       run the five-stage pipeline and report naming conventions
     save-model  learn, then snapshot the learned model to a file
     apply       serve geolocations from a saved model (no re-learning)
     serve       the same serving path as a network daemon (HTTP)
     relearn     apply observation events to a corpus, relearn dirty suffixes
     diff-model  diff two model snapshots (conventions, geohints, support)
     explain     trace one hostname's geolocation decision step by step
     geolocate   apply learned conventions to hostnames (re-learns; see apply)
     compare     evaluate Hoiho vs HLOC/DRoP/undns on validation suffixes
     lookup      consult the reference location dictionary *)

open Cmdliner
module Trace = Hoiho_obs.Trace

(* --- tracing plumbing shared by learn / apply --- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a span trace of the run and write it to $(docv) as \
           Chrome trace-event JSON, loadable in Perfetto or \
           chrome://tracing.")

(* enable tracing around [f], then export the collected spans; the
   write happens even when [f] raises so a failed run still leaves a
   trace to look at *)
let with_trace trace_out f =
  match trace_out with
  | None -> f ()
  | Some path ->
      Trace.set_enabled true;
      Trace.clear ();
      let finish () =
        Trace.set_enabled false;
        let spans = Trace.spans () in
        let oc = open_out path in
        output_string oc (Trace.to_chrome_json spans);
        close_out oc;
        Printf.eprintf "hoiho: wrote %d span(s) to %s%s\n"
          (List.length spans) path
          (match Trace.dropped () with
          | 0 -> ""
          | n -> Printf.sprintf " (%d dropped: ring full)" n)
      in
      Fun.protect ~finally:finish f

let preset_conv =
  let parse s =
    match s with
    | "ipv4-aug20" -> Ok (Hoiho_netsim.Presets.ipv4_aug20 ())
    | "ipv4-mar21" -> Ok (Hoiho_netsim.Presets.ipv4_mar21 ())
    | "ipv6-nov20" -> Ok (Hoiho_netsim.Presets.ipv6_nov20 ())
    | "ipv6-mar21" -> Ok (Hoiho_netsim.Presets.ipv6_mar21 ())
    | "tiny" -> Ok (Hoiho_netsim.Presets.tiny ())
    | other -> Error (`Msg (Printf.sprintf "unknown preset %S" other))
  in
  let print fmt (c : Hoiho_netsim.Generate.config) =
    Format.pp_print_string fmt c.Hoiho_netsim.Generate.label
  in
  Arg.conv (parse, print)

let preset_arg =
  Arg.(
    value
    & opt preset_conv (Hoiho_netsim.Presets.tiny ())
    & info [ "p"; "preset" ] ~docv:"PRESET"
        ~doc:
          "Dataset preset: ipv4-aug20, ipv4-mar21, ipv6-nov20, ipv6-mar21, or \
           tiny.")

let seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Override the preset's PRNG seed.")

let input_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "i"; "input" ] ~docv:"FILE"
        ~doc:"Read the dataset from $(docv) instead of generating one.")

let apply_seed config = function
  | None -> config
  | Some seed -> { config with Hoiho_netsim.Generate.seed }

let dataset_of config seed input =
  match input with
  | Some path -> (Hoiho_itdk.Io.load path, Hoiho_geodb.Db.default ())
  | None ->
      let ds, truth = Hoiho_netsim.Generate.generate (apply_seed config seed) in
      (ds, Hoiho_netsim.Truth.db truth)

(* --- generate --- *)

let generate_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output path.")
  in
  let run config seed out =
    let ds, _ = Hoiho_netsim.Generate.generate (apply_seed config seed) in
    Hoiho_itdk.Io.save out ds;
    Printf.printf "%s\nwrote %s\n" (Hoiho_itdk.Dataset.summary ds) out
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Synthesize an ITDK-style dataset.")
    Term.(const run $ preset_arg $ seed_arg $ out)

(* --- learn --- *)

let classification_name = function
  | Some Hoiho.Ncsel.Good -> "good"
  | Some Hoiho.Ncsel.Promising -> "promising"
  | Some Hoiho.Ncsel.Poor -> "poor"
  | None -> "-"

let learn_cmd =
  let suffix_filter =
    Arg.(
      value
      & opt (some string) None
      & info [ "suffix" ] ~docv:"SUFFIX" ~doc:"Only report this domain suffix.")
  in
  let show_regexes =
    Arg.(value & flag & info [ "r"; "regexes" ] ~doc:"Print the regexes of each NC.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write a JSON observability snapshot of the run (per-stage \
             durations, regex-engine and pool counters) to $(docv).")
  in
  let chaos_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos" ] ~docv:"SEED"
          ~doc:
            "Inject seeded faults into the dataset before learning: \
             hostname mangling, dictionary dropout, RTT loss/outliers/\
             negation, alias-resolution errors. Deterministic in \
             $(docv). Degraded suffix groups are reported, never \
             fatal.")
  in
  let chaos_level =
    Arg.(
      value
      & opt int 1
      & info [ "chaos-level" ] ~docv:"N"
          ~doc:
            "Chaos intensity: each level adds about 8 points of \
             per-item injection probability (default 1).")
  in
  let openmetrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "openmetrics" ] ~docv:"FILE"
          ~doc:
            "Write the run's metrics to $(docv) in OpenMetrics/\
             Prometheus text exposition when done (and periodically \
             during the run with $(b,--openmetrics-interval)).")
  in
  let openmetrics_interval =
    Arg.(
      value
      & opt float 0.
      & info [ "openmetrics-interval" ] ~docv:"SEC"
          ~doc:
            "With $(b,--openmetrics): additionally rewrite the file \
             every $(docv) seconds during the run, so long runs can be \
             scraped live. 0 (the default) writes only at the end.")
  in
  let run config seed input suffix_filter show_regexes metrics_out chaos_seed
      chaos_level trace_out openmetrics_out openmetrics_interval =
    let ds, db = dataset_of config seed input in
    (* scope the process-wide registry to this run so the snapshot in
       --metrics reflects exactly the work reported below (chaos
       injection volumes included) *)
    Hoiho_obs.Obs.reset ();
    let emitter =
      match (openmetrics_out, openmetrics_interval) with
      | Some path, period_s when period_s > 0. ->
          Some (Hoiho_obs.Obs.start_emitter ~period_s ~path ())
      | _ -> None
    in
    let db, ds =
      match chaos_seed with
      | None -> (db, ds)
      | Some cseed ->
          Hoiho_netsim.Chaos.apply
            (Hoiho_netsim.Chaos.config ~level:chaos_level cseed)
            db ds
    in
    let pipeline = with_trace trace_out (fun () -> Hoiho.Pipeline.run ~db ds) in
    (match emitter with
    | Some e ->
        (* joins the emitter domain, then writes the final snapshot
           itself — the periodic rewrites can never race or clobber
           the end-of-run file *)
        Hoiho_obs.Obs.stop_emitter e
    | None -> (
        (* no periodic emitter: the same atomic writer, once, so both
           modes produce the final file the same way *)
        match openmetrics_out with
        | None -> ()
        | Some path -> Hoiho_obs.Obs.write_openmetrics path));
    (match openmetrics_out with
    | Some path -> Printf.printf "wrote OpenMetrics exposition to %s\n" path
    | None -> ());
    let results =
      match suffix_filter with
      | None -> pipeline.Hoiho.Pipeline.results
      | Some s -> List.filter (fun (r : Hoiho.Pipeline.suffix_result) -> r.suffix = s)
                    pipeline.Hoiho.Pipeline.results
    in
    let shown =
      List.filter (fun (r : Hoiho.Pipeline.suffix_result) -> r.n_tagged > 0) results
    in
    Printf.printf "%-30s %6s %6s %5s %5s %5s %5s %5s  %s\n" "suffix" "hosts"
      "tagged" "tp" "fp" "fn" "unk" "lrn" "class";
    List.iter
      (fun (r : Hoiho.Pipeline.suffix_result) ->
        let tp, fp, fn, unk =
          match r.nc with
          | Some nc ->
              ( nc.Hoiho.Ncsel.counts.Hoiho.Evalx.tp,
                nc.Hoiho.Ncsel.counts.Hoiho.Evalx.fp,
                nc.Hoiho.Ncsel.counts.Hoiho.Evalx.fn,
                nc.Hoiho.Ncsel.counts.Hoiho.Evalx.unk )
          | None -> (0, 0, 0, 0)
        in
        Printf.printf "%-30s %6d %6d %5d %5d %5d %5d %5d  %s\n" r.suffix
          r.n_samples r.n_tagged tp fp fn unk
          (Hoiho.Learned.size r.learned)
          (classification_name r.classification);
        if show_regexes then begin
          (match r.nc with
          | Some nc ->
              List.iter
                (fun (c : Hoiho.Cand.t) ->
                  Printf.printf "    %s    [%s]\n" c.Hoiho.Cand.source
                    (Format.asprintf "%a" Hoiho.Plan.pp c.Hoiho.Cand.plan))
                nc.Hoiho.Ncsel.cands
          | None -> ());
          List.iter
            (fun (e : Hoiho.Learned.entry) ->
              Printf.printf "    learned %-8s -> %s\n" e.Hoiho.Learned.hint
                (Hoiho_geodb.City.describe e.Hoiho.Learned.city))
            (Hoiho.Learned.entries r.learned)
        end)
      shown;
    let degraded =
      List.filter
        (fun (r : Hoiho.Pipeline.suffix_result) -> r.degraded <> None)
        pipeline.Hoiho.Pipeline.results
    in
    if degraded <> [] then begin
      Printf.printf "\n%d suffix group(s) degraded (pipeline continued without them):\n"
        (List.length degraded);
      List.iter
        (fun (r : Hoiho.Pipeline.suffix_result) ->
          match r.degraded with
          | Some d ->
              Printf.printf "  %-30s stage %-9s %s\n" r.suffix
                d.Hoiho.Pipeline.stage d.Hoiho.Pipeline.error
          | None -> ())
        degraded
    end;
    match metrics_out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Hoiho_obs.Obs.to_json pipeline.Hoiho.Pipeline.metrics);
        close_out oc;
        Printf.printf "wrote metrics snapshot to %s\n" path
  in
  Cmd.v
    (Cmd.info "learn" ~doc:"Learn naming conventions from a dataset.")
    Term.(
      const run $ preset_arg $ seed_arg $ input_arg $ suffix_filter $ show_regexes
      $ metrics_out $ chaos_seed $ chaos_level $ trace_arg $ openmetrics_out
      $ openmetrics_interval)

(* --- save-model / apply / geolocate --- *)

(* every answer prints with its confidence score; a --min-conf floor
   turns a kept-but-low-scoring answer into the distinct
   "(low confidence)" outcome, score still shown *)
let print_answer ?min_conf hostname (answer : Hoiho_serve.Serve.answer) =
  let conf = answer.Hoiho_serve.Serve.confidence in
  let below = match min_conf with Some f -> conf < f | None -> false in
  match answer.Hoiho_serve.Serve.city with
  | Some _ when below ->
      Printf.printf "%-50s (low confidence)\t%.3f\n" hostname conf
  | Some city ->
      Printf.printf "%-50s %s\t%.3f\n" hostname
        (Hoiho_geodb.City.describe city) conf
  | None -> Printf.printf "%-50s (no geolocation)\t%.3f\n" hostname conf

let min_conf_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "min-conf" ] ~docv:"X"
        ~doc:
          "Confidence floor in [0,1]: answers scoring below $(docv) print as \
           (low confidence) with their score instead of a geohint.")

let load_model_or_die path =
  match Hoiho.Learned_io.load path with
  | Ok model -> model
  | Error e ->
      Printf.eprintf "hoiho: cannot load model %s: %s\n" path
        (Hoiho.Learned_io.error_to_string e);
      exit 1

let model_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "model" ] ~docv:"FILE"
        ~doc:"Serve from a model snapshot written by $(b,save-model), skipping \
              the learning run entirely.")

let save_model_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Snapshot output path.")
  in
  let run config seed input out =
    let ds, db = dataset_of config seed input in
    Hoiho_obs.Obs.reset ();
    let pipeline = Hoiho.Pipeline.run ~db ds in
    let model = Hoiho.Learned_io.of_pipeline pipeline in
    Hoiho.Learned_io.save out model;
    let n_regexes =
      List.fold_left
        (fun a (s : Hoiho.Learned_io.suffix_model) ->
          a + List.length s.Hoiho.Learned_io.cands)
        0 model.Hoiho.Learned_io.suffixes
    in
    let n_learned =
      List.fold_left
        (fun a (s : Hoiho.Learned_io.suffix_model) ->
          a + Hoiho.Learned.size s.Hoiho.Learned_io.learned)
        0 model.Hoiho.Learned_io.suffixes
    in
    Printf.printf
      "wrote %s: format v%d, %d suffix model(s), %d regex(es), %d learned hint(s), %s dictionary\n"
      out Hoiho.Learned_io.format_version
      (List.length model.Hoiho.Learned_io.suffixes)
      n_regexes n_learned
      (match model.Hoiho.Learned_io.dictionary with
      | Hoiho.Learned_io.Default -> "default"
      | Hoiho.Learned_io.Embedded cities ->
          Printf.sprintf "embedded (%d cities)" (List.length cities))
  in
  Cmd.v
    (Cmd.info "save-model"
       ~doc:
         "Learn naming conventions and snapshot the resulting model to a \
          versioned JSON file for later $(b,apply) runs.")
    Term.(const run $ preset_arg $ seed_arg $ input_arg $ out)

let read_stdin_hostnames () =
  let rec go acc =
    match input_line stdin with
    | line ->
        let line = String.trim line in
        go (if line = "" then acc else line :: acc)
    | exception End_of_file -> List.rev acc
  in
  go []

let rec chunks n = function
  | [] -> []
  | l ->
      let rec take k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | x :: rest -> take (k - 1) (x :: acc) rest
      in
      let batch, rest = take n [] l in
      batch :: chunks n rest

let apply_cmd =
  let model_path =
    Arg.(
      required
      & opt (some file) None
      & info [ "model" ] ~docv:"FILE"
          ~doc:"Model snapshot written by $(b,save-model).")
  in
  let batch =
    Arg.(
      value
      & opt int 256
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "Apply hostnames in batches of $(docv): each batch's uncached \
             hostnames are geolocated in parallel over the domain pool.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print serving statistics to stderr when done: cache \
             hit/miss/eviction counts, the hit ratio, and a batch-time \
             summary normalized per 1000 hostnames.")
  in
  let hostnames =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"HOSTNAME"
          ~doc:"Hostnames to locate (read from stdin when none are given).")
  in
  let run model_path batch stats min_conf trace_out hostnames =
    let model = load_model_or_die model_path in
    let serve = Hoiho_serve.Serve.create model in
    let hostnames =
      match hostnames with [] -> read_stdin_hostnames () | l -> l
    in
    with_trace trace_out (fun () ->
        List.iter
          (fun chunk ->
            List.iter
              (fun (hostname, answer) -> print_answer ?min_conf hostname answer)
              (Hoiho_serve.Serve.apply_batch serve chunk))
          (chunks (max 1 batch) hostnames));
    if stats then begin
      let s = Hoiho_obs.Obs.snapshot () in
      let c name = Option.value (Hoiho_obs.Obs.find_counter s name) ~default:0 in
      let applied = c "serve.applied" in
      let hits = c "serve.cache_hits" and misses = c "serve.cache_misses" in
      let probes = hits + misses in
      let ratio =
        if probes = 0 then 0.0
        else 100.0 *. float_of_int hits /. float_of_int probes
      in
      Printf.eprintf
        "serve: %d applied, %d cache hits, %d misses, %d evictions \
         (hit ratio %.1f%%)\n"
        applied hits misses (c "serve.cache_evictions") ratio;
      match Hoiho_obs.Obs.find_histogram s "serve.batch_ms" with
      | Some h when applied > 0 ->
          let per_1k = h.Hoiho_obs.Obs.total *. 1000.0 /. float_of_int applied in
          Printf.eprintf
            "serve: %d batch(es), %.1f ms total, %.2f ms per 1k hostnames \
             (batch p50 %.2f ms, p95 %.2f ms)\n"
            h.Hoiho_obs.Obs.n h.Hoiho_obs.Obs.total per_1k
            h.Hoiho_obs.Obs.p50 h.Hoiho_obs.Obs.p95
      | _ -> ()
    end
  in
  Cmd.v
    (Cmd.info "apply"
       ~doc:
         "Geolocate hostnames from a saved model — the high-throughput \
          serving path: no learning run, answers cached in a sharded LRU.")
    Term.(
      const run $ model_path $ batch $ stats $ min_conf_arg $ trace_arg
      $ hostnames)

(* --- serve --- *)

let serve_cmd =
  let model_path =
    Arg.(
      required
      & opt (some file) None
      & info [ "model" ] ~docv:"FILE"
          ~doc:"Model snapshot written by $(b,save-model).")
  in
  let port =
    Arg.(
      value
      & opt int 0
      & info [ "port" ] ~docv:"PORT"
          ~doc:"TCP port to listen on (0, the default, picks an ephemeral \
                port and prints it).")
  in
  let host =
    Arg.(
      value
      & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Accept-loop domains (and apply parallelism). Defaults to the \
             worker-pool default (HOIHO_JOBS or the core count).")
  in
  let batch_max =
    Arg.(
      value
      & opt int 64
      & info [ "batch-max" ] ~docv:"N"
          ~doc:"Coalesce at most $(docv) hostnames into one apply batch.")
  in
  let batch_wait =
    Arg.(
      value
      & opt float 1.0
      & info [ "batch-wait-ms" ] ~docv:"MS"
          ~doc:
            "Hold a forming batch open for up to $(docv) ms after its first \
             hostname while more requests are in flight.")
  in
  let max_pending =
    Arg.(
      value
      & opt int 1024
      & info [ "max-pending" ] ~docv:"N"
          ~doc:
            "Admission bound: with $(docv) hostnames already queued, new \
             requests are shed with 503 instead of joining an unbounded \
             backlog.")
  in
  let timeout =
    Arg.(
      value
      & opt float 5.0
      & info [ "timeout" ] ~docv:"SEC"
          ~doc:
            "Per-request read deadline: a client that has not delivered a \
             full request within $(docv) seconds is answered 408 and \
             disconnected (slow-loris defense).")
  in
  let corpus =
    Arg.(
      value
      & opt (some file) None
      & info [ "corpus" ] ~docv:"FILE"
          ~doc:
            "ITDK corpus the model was learned from; enables POST /observe \
             (incremental relearn from observation events).")
  in
  let slo =
    Arg.(
      value
      & opt (some file) None
      & info [ "slo" ] ~docv:"FILE"
          ~doc:
            "SLO declaration file (strict JSON: window_s, buckets, \
             objectives) for the health monitor. /healthz answers 503 when \
             an objective burns past its fail_ratio. A malformed file fails \
             startup.")
  in
  let access_log =
    Arg.(
      value
      & opt (some string) None
      & info [ "access-log" ] ~docv:"FILE"
          ~doc:
            "Append one JSON line per request to $(docv) (request id, \
             endpoint, status, latency, batch size, cache hit, confidence, \
             shed/degraded flags), rotated by size to $(docv).1.")
  in
  let run model_path corpus slo access_log port host jobs batch_max batch_wait
      max_pending timeout =
    let model = load_model_or_die model_path in
    let slo =
      match slo with
      | None -> None
      | Some path -> (
          match Hoiho_net.Slo.load path with
          | Ok s -> Some s
          | Error e ->
              Printf.eprintf "hoiho: cannot load SLO file %s: %s\n" path e;
              exit 1)
    in
    let config =
      {
        Hoiho_net.Server.default_config with
        Hoiho_net.Server.host;
        port;
        jobs =
          (match jobs with
          | Some j -> max 1 j
          | None -> Hoiho_util.Pool.default_jobs ());
        max_batch = max 1 batch_max;
        max_wait_ms = Float.max 0.0 batch_wait;
        max_pending = max 1 max_pending;
        request_timeout_s = Float.max 0.05 timeout;
        model_path = Some model_path;
        corpus_path = corpus;
        objectives = Option.map (fun s -> s.Hoiho_net.Slo.objectives) slo;
        health_bucket_ms =
          (match slo with
          | Some s -> s.Hoiho_net.Slo.bucket_ms
          | None -> Hoiho_net.Server.default_config.health_bucket_ms);
        health_nbuckets =
          (match slo with
          | Some s -> s.Hoiho_net.Slo.nbuckets
          | None -> Hoiho_net.Server.default_config.health_nbuckets);
        access_log;
      }
    in
    let server = Hoiho_net.Server.start ~config model in
    let stop = Atomic.make false in
    let handle = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
    Sys.set_signal Sys.sigterm handle;
    Sys.set_signal Sys.sigint handle;
    (* SIGHUP = hot reload: the handler only flips an atomic; the
       server's housekeeping domain re-decodes the snapshot off-path
       and swaps it in (fresh cache included), so serving never stops *)
    Sys.set_signal Sys.sighup
      (Sys.Signal_handle (fun _ -> Hoiho_net.Server.request_reload server));
    Printf.printf "hoiho: serving %s on %s:%d (jobs=%d)\n%!" model_path
      config.Hoiho_net.Server.host
      (Hoiho_net.Server.port server)
      config.Hoiho_net.Server.jobs;
    Printf.printf
      "hoiho: GET /geolocate?h= /explain?h= /metrics /healthz /debug/slo \
       /debug/windows; POST /batch /reload%s; SIGHUP reloads, SIGTERM stops\n\
       %!"
      (match corpus with Some _ -> " /observe" | None -> "");
    while not (Atomic.get stop) do
      (* sleepf returns early on EINTR when a signal lands *)
      try Unix.sleepf 0.2 with Unix.Unix_error (EINTR, _, _) -> ()
    done;
    Hoiho_net.Server.stop server;
    Printf.printf "hoiho: shut down cleanly\n%!"
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve geolocations from a saved model over HTTP: a multi-domain \
          TCP daemon with request batching, bounded admission (503 under \
          backlog), OpenMetrics at /metrics, decision traces at /explain, \
          and hot model reload (SIGHUP or POST /reload) that swaps the \
          snapshot atomically without dropping traffic.")
    Term.(
      const run $ model_path $ corpus $ slo $ access_log $ port $ host $ jobs
      $ batch_max $ batch_wait $ max_pending $ timeout)

(* --- health --- *)

(* a deliberately tiny HTTP/1.1 client: one GET, read to EOF. The probe
   must not share code with the daemon it is checking. *)
let probe_healthz url =
  let strip_prefix p s =
    if String.length s >= String.length p
       && String.(lowercase_ascii (sub s 0 (length p))) = p
    then Some (String.sub s (String.length p) (String.length s - String.length p))
    else None
  in
  let rest =
    match strip_prefix "http://" url with
    | Some r -> r
    | None -> ( match strip_prefix "https://" url with
      | Some _ ->
          Printf.eprintf "hoiho: health: https is not supported\n";
          exit 2
      | None -> url)
  in
  let hostport =
    match String.index_opt rest '/' with
    | Some i -> String.sub rest 0 i
    | None -> rest
  in
  let host, port =
    match String.index_opt hostport ':' with
    | Some i ->
        ( String.sub hostport 0 i,
          int_of_string
            (String.sub hostport (i + 1) (String.length hostport - i - 1)) )
    | None -> (hostport, 80)
  in
  let host = if host = "" then "127.0.0.1" else host in
  let addr =
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> Unix.inet_addr_of_string host
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (addr, port));
      let req =
        Printf.sprintf
          "GET /healthz HTTP/1.1\r\nHost: %s:%d\r\nConnection: close\r\n\r\n"
          host port
      in
      let _ = Unix.write_substring fd req 0 (String.length req) in
      let buf = Buffer.create 512 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
      in
      drain ();
      let raw = Buffer.contents buf in
      let status =
        try Scanf.sscanf raw "HTTP/1.1 %d" (fun s -> s) with _ -> 0
      in
      let body =
        let n = String.length raw in
        let rec find i =
          if i + 4 > n then ""
          else if String.sub raw i 4 = "\r\n\r\n" then
            String.sub raw (i + 4) (n - i - 4)
          else find (i + 1)
        in
        find 0
      in
      (status, String.trim body))

let health_cmd =
  let url =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"URL"
          ~doc:
            "Daemon base URL, e.g. $(b,http://127.0.0.1:8080) (the /healthz \
             path is implied).")
  in
  let run url =
    match probe_healthz url with
    | exception e ->
        Printf.eprintf "hoiho: health: %s unreachable: %s\n" url
          (Printexc.to_string e);
        exit 2
    | status, body ->
        Printf.printf "%d %s\n" status body;
        if status <> 200 then exit 1
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "Probe a running daemon's /healthz and print the evaluated state. \
          Exits 0 when healthy (200), 1 when degraded service reports \
          failing (503), 2 when the daemon is unreachable — ready for \
          scripting and orchestration liveness checks.")
    Term.(const run $ url)

(* --- explain --- *)

let explain_cmd =
  let model_path =
    Arg.(
      required
      & opt (some file) None
      & info [ "model" ] ~docv:"FILE"
          ~doc:"Model snapshot written by $(b,save-model).")
  in
  let hostname =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"HOSTNAME" ~doc:"The hostname to explain.")
  in
  let run model_path min_conf hostname =
    let serve = Hoiho_serve.Serve.create (load_model_or_die model_path) in
    (* the decision trace IS the span tree of this one geolocate call:
       PSL split, cache probe, each candidate regex with its capture
       groups and decoded hint, the dictionary consultation (collision
       losers included), and the final answer with provenance *)
    Trace.set_enabled true;
    Trace.clear ();
    let answer = Hoiho_serve.Serve.geolocate_conf serve hostname in
    Trace.set_enabled false;
    print_answer ?min_conf hostname answer;
    print_newline ();
    print_string (Trace.render_text (Trace.spans ()))
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Geolocate one hostname from a saved model and print the full \
          decision trace: the registered-suffix split, every candidate \
          regex tried with its capture groups, the dictionary entries \
          consulted (with collision losers), and the final geohint with \
          the rule that produced it.")
    Term.(const run $ model_path $ min_conf_arg $ hostname)

let geolocate_cmd =
  let hostnames =
    Arg.(value & pos_all string [] & info [] ~docv:"HOSTNAME" ~doc:"Hostnames to locate.")
  in
  let run config seed input model min_conf hostnames =
    match model with
    | Some path ->
        let serve = Hoiho_serve.Serve.create (load_model_or_die path) in
        List.iter
          (fun hostname ->
            print_answer ?min_conf hostname
              (Hoiho_serve.Serve.geolocate_conf serve hostname))
          hostnames
    | None ->
        Printf.eprintf
          "hoiho: note: geolocate re-learns conventions on every call; use \
           `hoiho save-model` once and `hoiho apply --model FILE` (or \
           `geolocate --model FILE`) to serve from the saved model\n";
        let ds, db = dataset_of config seed input in
        let pipeline = Hoiho.Pipeline.run ~db ds in
        List.iter
          (fun hostname ->
            let city, confidence =
              Hoiho.Pipeline.geolocate_conf pipeline hostname
            in
            print_answer ?min_conf hostname
              { Hoiho_serve.Serve.city; confidence })
          hostnames
  in
  Cmd.v
    (Cmd.info "geolocate" ~doc:"Apply learned conventions to hostnames.")
    Term.(
      const run $ preset_arg $ seed_arg $ input_arg $ model_arg $ min_conf_arg
      $ hostnames)

(* --- compare --- *)

let compare_cmd =
  let run config seed =
    let config = apply_seed config seed in
    let ds, truth = Hoiho_netsim.Generate.generate config in
    let pipeline = Hoiho.Pipeline.run ~db:(Hoiho_netsim.Truth.db truth) ds in
    let suffixes = Hoiho_netsim.Oper.validation_suffixes in
    let cmps = Hoiho_validate.Validate.compare_methods pipeline truth ~suffixes in
    let open Hoiho_validate.Validate in
    Printf.printf "%-14s %5s | %-15s | %-15s | %-15s | %-15s\n" "suffix" "n"
      "hoiho tp/fp/fn%" "hloc" "drop" "undns";
    List.iter
      (fun (c : comparison) ->
        let f s = Printf.sprintf "%3.0f/%3.0f/%3.0f" (tp_pct s) (fp_pct s) (fn_pct s) in
        Printf.printf "%-14s %5d | %-15s | %-15s | %-15s | %-15s\n" c.suffix c.n
          (f c.hoiho) (f c.hloc) (f c.drop) (f c.undns))
      cmps
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare Hoiho against HLOC, DRoP and undns.")
    Term.(const run $ preset_arg $ seed_arg)

(* --- calibrate --- *)

let calibrate_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Also write the report as JSON to $(docv).")
  in
  let run config seed out =
    let config = apply_seed config seed in
    let ds, truth = Hoiho_netsim.Generate.generate config in
    let pipeline = Hoiho.Pipeline.run ~db:(Hoiho_netsim.Truth.db truth) ds in
    let suffixes = Hoiho_netsim.Truth.geo_suffixes truth in
    let report = Hoiho_validate.Calibration.of_pipeline pipeline ~suffixes in
    print_string (Hoiho_validate.Calibration.render_text report);
    match out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc
          (Hoiho_util.Json.to_string
             (Hoiho_validate.Calibration.to_json report));
        output_char oc '\n';
        close_out oc;
        Printf.printf "wrote calibration report to %s\n" path
  in
  Cmd.v
    (Cmd.info "calibrate"
       ~doc:
         "Measure confidence calibration against generator ground truth: \
          bucket every ground-truth answer (abstentions included, at 0.0) \
          by confidence decile and report per-bucket accuracy, the Brier \
          score, and the expected calibration error.")
    Term.(const run $ preset_arg $ seed_arg $ out)

(* --- report --- *)

let report_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Directory for the pages.")
  in
  let run config seed input out =
    let ds, db = dataset_of config seed input in
    let pipeline = Hoiho.Pipeline.run ~db ds in
    let n = Hoiho_validate.Webreport.write pipeline ~dir:out in
    Printf.printf "wrote index.md and %d suffix pages to %s\n" n out
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Render per-suffix pages of inferred conventions (the paper's website).")
    Term.(const run $ preset_arg $ seed_arg $ input_arg $ out)

(* --- lookup --- *)

let lookup_cmd =
  let code =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"CODE" ~doc:"Hint string.")
  in
  let run code =
    let db = Hoiho_geodb.Db.default () in
    let kinds =
      [ Hoiho.Plan.Iata; Hoiho.Plan.Icao; Hoiho.Plan.Locode; Hoiho.Plan.Clli;
        Hoiho.Plan.CityName; Hoiho.Plan.FacilityAddr ]
    in
    List.iter
      (fun kind ->
        match Hoiho.Dicts.lookup db kind code with
        | [] -> ()
        | cities ->
            List.iter
              (fun city ->
                Printf.printf "%-8s %s\n"
                  (Hoiho.Plan.hint_type_name kind)
                  (Hoiho_geodb.City.describe city))
              cities)
      kinds
  in
  Cmd.v
    (Cmd.info "lookup" ~doc:"Consult the reference location dictionary.")
    Term.(const run $ code)

(* --- relearn --- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let relearn_cmd =
  let model_path =
    Arg.(
      required
      & opt (some file) None
      & info [ "model" ] ~docv:"FILE"
          ~doc:"Prior model snapshot (a default-options learn of the corpus).")
  in
  let events_path =
    Arg.(
      required
      & opt (some file) None
      & info [ "events" ] ~docv:"FILE"
          ~doc:"Observation events in the $(b,hoiho) delta wire format.")
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Updated snapshot output path.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains for the dirty-group relearn.")
  in
  let run config seed input model_path events_path out jobs =
    let model = load_model_or_die model_path in
    (* The corpus the model was learned from; the model brings its own
       dictionary, so dataset_of's db is irrelevant here. *)
    let corpus, _db = dataset_of config seed input in
    let events =
      match Hoiho.Delta.events_of_string (read_file events_path) with
      | Ok events -> events
      | Error msg ->
          Printf.eprintf "hoiho: bad events in %s: %s\n" events_path msg;
          exit 1
    in
    match Hoiho.Delta.relearn_model ?jobs ~model ~corpus events with
    | Error e ->
        Printf.eprintf "hoiho: %s\n" (Hoiho.Delta.error_to_string e);
        exit 1
    | Ok (model', _corpus', stats) ->
        Hoiho.Learned_io.save out model';
        Printf.printf
          "relearned: %d event(s), %d dirty suffix(es), %d group(s) \
           relearned, %d reused\nwrote %s\n"
          stats.Hoiho.Delta.events
          (List.length stats.Hoiho.Delta.dirty)
          stats.Hoiho.Delta.groups_relearned stats.Hoiho.Delta.groups_reused
          out;
        print_string (Hoiho.Model_diff.render_text
                        (Hoiho.Model_diff.diff model model'))
  in
  Cmd.v
    (Cmd.info "relearn"
       ~doc:
         "Apply observation events to a corpus and incrementally relearn \
          only the dirty suffix groups, reusing the prior model for the \
          rest.")
    Term.(
      const run $ preset_arg $ seed_arg $ input_arg $ model_path $ events_path
      $ out $ jobs)

(* --- diff-model --- *)

let diff_model_cmd =
  let before =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"BEFORE" ~doc:"Earlier model snapshot.")
  in
  let after =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"AFTER" ~doc:"Later model snapshot.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the machine-readable JSON diff instead.")
  in
  let run before after json =
    let diff =
      Hoiho.Model_diff.diff (load_model_or_die before) (load_model_or_die after)
    in
    if json then print_endline (Hoiho.Model_diff.encode diff)
    else print_string (Hoiho.Model_diff.render_text diff)
  in
  Cmd.v
    (Cmd.info "diff-model"
       ~doc:
         "Diff two model snapshots: suffixes added, dropped, and changed, \
          with per-hint geohint movement.")
    Term.(const run $ before $ after $ json)

let () =
  let doc = "learn geographic naming conventions from router hostnames" in
  exit (Cmd.eval (Cmd.group (Cmd.info "hoiho" ~doc)
                    [ generate_cmd; learn_cmd; save_model_cmd; apply_cmd;
                      serve_cmd; health_cmd; explain_cmd; geolocate_cmd;
                      compare_cmd; calibrate_cmd; report_cmd; lookup_cmd;
                      relearn_cmd; diff_model_cmd ]))
