(* Validates a --trace output file: it must be a complete Chrome
   trace-event JSON document by the repo's own strict parser, with a
   non-empty "traceEvents" array of complete-duration ("ph":"X") events
   each carrying name/ts/dur/pid/tid. Exits non-zero with a diagnostic
   otherwise — wired into `dune build @check` (see bin/dune). *)

module Json = Hoiho_util.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("trace_check: " ^ m); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let number = function
  | Some (Json.Int _) | Some (Json.Float _) -> true
  | _ -> false

let check_event i ev =
  match ev with
  | Json.Obj _ ->
      (match Json.member "name" ev with
      | Some (Json.String _) -> ()
      | _ -> fail "event %d: missing string \"name\"" i);
      (match Json.member "ph" ev with
      | Some (Json.String "X") -> ()
      | Some v -> fail "event %d: \"ph\" is %s, want \"X\"" i (Json.to_string v)
      | None -> fail "event %d: missing \"ph\"" i);
      if not (number (Json.member "ts" ev)) then
        fail "event %d: missing numeric \"ts\"" i;
      if not (number (Json.member "dur" ev)) then
        fail "event %d: missing numeric \"dur\"" i;
      if not (number (Json.member "pid" ev)) then
        fail "event %d: missing numeric \"pid\"" i;
      if not (number (Json.member "tid" ev)) then
        fail "event %d: missing numeric \"tid\"" i
  | other -> fail "event %d: %s, want object" i (Json.kind other)

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ ->
        prerr_endline "usage: trace_check FILE";
        exit 2
  in
  let doc =
    match Json.parse (read_file path) with
    | Ok doc -> doc
    | Error e -> fail "%s does not parse as JSON: %s" path e
  in
  let events =
    match Json.member "traceEvents" doc with
    | Some (Json.List evs) -> evs
    | Some other -> fail "\"traceEvents\" is %s, want list" (Json.kind other)
    | None -> fail "missing \"traceEvents\""
  in
  if events = [] then fail "\"traceEvents\" is empty";
  List.iteri check_event events;
  Printf.printf "trace_check: %s ok (%d events)\n" path (List.length events)
