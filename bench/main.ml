(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (§6) on synthetic datasets, printing measured values next
   to the paper's, plus bechamel micro-benchmarks of the core machinery.

     dune exec bench/main.exe                 -- run everything
     dune exec bench/main.exe -- --list       -- list experiment ids
     dune exec bench/main.exe -- -e fig9      -- run one experiment
     dune exec bench/main.exe -- --quick      -- small datasets (CI) *)

module Generate = Hoiho_netsim.Generate
module Chaos = Hoiho_netsim.Chaos
module Presets = Hoiho_netsim.Presets
module Truth = Hoiho_netsim.Truth
module Oper = Hoiho_netsim.Oper
module Dataset = Hoiho_itdk.Dataset
module Router = Hoiho_itdk.Router
module Pipeline = Hoiho.Pipeline
module Ncsel = Hoiho.Ncsel
module Evalx = Hoiho.Evalx
module Plan = Hoiho.Plan
module Cand = Hoiho.Cand
module Learned = Hoiho.Learned
module City = Hoiho_geodb.City
module Validate = Hoiho_validate.Validate
module Analysis = Hoiho_validate.Analysis
module Stat = Hoiho_util.Stat

(* --- shared, lazily computed state --- *)

type run = { ds : Dataset.t; truth : Truth.t; pipeline : Pipeline.t Lazy.t }

let quick = ref false
let runs : (string, run) Hashtbl.t = Hashtbl.create 4

let presets () =
  if !quick then
    [ ("Aug '20 IPv4", Presets.tiny ~seed:20200801 ());
      ("Mar '21 IPv4", Presets.tiny ~seed:20210301 ());
      ("Nov '20 IPv6", Presets.tiny ~seed:20201101 ());
      ("Mar '21 IPv6", Presets.tiny ~seed:20210302 ()) ]
  else
    List.map (fun (c : Generate.config) -> (c.Generate.label, c)) (Presets.all ())

let run_for label =
  match Hashtbl.find_opt runs label with
  | Some r -> (r.ds, r.truth, Lazy.force r.pipeline)
  | None ->
      let config = List.assoc label (presets ()) in
      let config = { config with Generate.label } in
      let ds, truth = Generate.generate config in
      let r = { ds; truth; pipeline = lazy (Pipeline.run ~db:(Truth.db truth) ds) } in
      Hashtbl.replace runs label r;
      (ds, truth, Lazy.force r.pipeline)

let dataset_for label =
  match Hashtbl.find_opt runs label with
  | Some r -> r.ds
  | None ->
      let ds, _, _ = run_for label in
      ds

let aug20 = "Aug '20 IPv4"
let all_labels = [ "Aug '20 IPv4"; "Mar '21 IPv4"; "Nov '20 IPv6"; "Mar '21 IPv6" ]

(* --- table 1 --- *)

let table1 () =
  Report.section "Table 1: summary of ITDKs";
  let rows =
    List.map
      (fun label ->
        let ds = dataset_for label in
        let n = Dataset.n_routers ds in
        [
          label;
          string_of_int n;
          Report.fmt_count_pct (Dataset.n_with_hostname ds) n;
          Report.fmt_count_pct (Dataset.n_responsive ds) n;
          string_of_int (Array.length ds.Dataset.vps);
        ])
      all_labels
  in
  Report.table
    ~header:[ "dataset"; "routers"; "w/ hostnames"; "w/ RTT"; "VPs" ]
    rows;
  Report.note "paper: 2.56M/2.57M IPv4 and 559K/525K IPv6 routers; hostnames";
  Report.note "55.0/54.1/15.1/16.0%%; RTT 81.9/81.7/47.3/45.2%%; VPs 106/100/46/39.";
  Report.note "(synthetic datasets are ~1/40 of the paper's scale; the";
  Report.note "percentages are the comparable quantity)"

(* --- figure 5 --- *)

let fig5 () =
  Report.section "Figure 5: ping vs traceroute RTT measurements";
  let ds = dataset_for aug20 in
  Report.subsection "(a) CDF of min RTT per router: ping vs traceroute";
  Report.table
    ~header:[ "<= ms"; "ping CDF"; "traceroute CDF" ]
    (List.map
       (fun (th, ping, trace) ->
         [ Printf.sprintf "%.0f" th; Printf.sprintf "%.3f" ping; Printf.sprintf "%.3f" trace ])
       (Analysis.fig5a ds));
  let pings, traces =
    Array.to_list ds.Dataset.routers
    |> List.filter_map (fun (r : Router.t) ->
           match (Router.min_ping_rtt r, Router.min_trace_rtt r) with
           | Some (_, p), Some (_, t) -> Some (p, t)
           | _ -> None)
    |> List.split
  in
  let mp = Stat.median pings and mt = Stat.median traces in
  Report.paper_vs "median min ping RTT" "16 ms" (Printf.sprintf "%.0f ms" mp);
  Report.paper_vs "median min traceroute RTT" "68 ms" (Printf.sprintf "%.0f ms" mt);
  Report.paper_vs "traceroute / ping ratio" "4.25x" (Printf.sprintf "%.2fx" (mt /. mp));
  Report.subsection "(b) CDF of number of VPs observing each router";
  Report.table
    ~header:[ "<= k VPs"; "traceroute CDF"; "ping CDF" ]
    (List.map
       (fun (k, trace, ping) ->
         [ string_of_int k; Printf.sprintf "%.3f" trace; Printf.sprintf "%.3f" ping ])
       (Analysis.fig5b ds));
  let one_vp =
    Stat.fraction
      (fun (r : Router.t) -> List.length r.Router.trace_rtts = 1)
      (Array.to_list ds.Dataset.routers
      |> List.filter (fun (r : Router.t) -> r.Router.ping_rtts <> []))
  in
  Report.paper_vs "routers seen by 1 VP in traceroute" "35.8%"
    (Printf.sprintf "%.1f%%" (100.0 *. one_vp))

(* --- table 2 --- *)

let table2 () =
  Report.section "Table 2: coverage of usable naming conventions";
  let rows =
    List.map
      (fun label ->
        let _, _, p = run_for label in
        let c = Analysis.coverage p in
        [
          label;
          string_of_int c.Analysis.total;
          Report.fmt_count_pct c.Analysis.with_hostname c.Analysis.total;
          Report.fmt_count_pct c.Analysis.with_apparent c.Analysis.total;
          Report.fmt_count_pct c.Analysis.geolocated c.Analysis.total;
        ])
      all_labels
  in
  Report.table
    ~header:[ "dataset"; "total"; "with hostname"; "w/ apparent geohint"; "geolocated" ]
    rows;
  Report.note "paper (Aug '20 IPv4): hostname 55.0%%, apparent 8.8%%, geolocated 7.6%%;";
  Report.note "paper (Nov '20 IPv6): hostname 15.1%%, apparent 5.3%%, geolocated 4.7%%."

(* --- table 3 --- *)

let table3 () =
  Report.section "Table 3: classification of naming conventions";
  let rows =
    List.map
      (fun label ->
        let _, _, p = run_for label in
        let k = Analysis.classifications p in
        let total = k.Analysis.good + k.Analysis.promising + k.Analysis.poor in
        [
          label;
          Report.fmt_count_pct k.Analysis.good total;
          Report.fmt_count_pct k.Analysis.promising total;
          Report.fmt_count_pct k.Analysis.poor total;
          string_of_int total;
        ])
      all_labels
  in
  Report.table ~header:[ "dataset"; "good"; "promising"; "poor"; "total" ] rows;
  Report.note "paper (Aug '20 IPv4): good 43.6%%, promising 6.1%%, poor 50.4%% of 1825;";
  Report.note "paper (Nov '20 IPv6): good 56.4%%, promising 4.9%%, poor 38.7%% of 346."

(* --- table 4 --- *)

let annot_name = function
  | Analysis.A_none -> "none"
  | Analysis.A_state -> "state"
  | Analysis.A_country -> "country"
  | Analysis.A_both -> "both"

let table4 () =
  Report.section "Table 4: geohint types and state/country annotations (usable NCs)";
  let _, _, p = run_for aug20 in
  let rows, mixed = Analysis.table4 p in
  let order (r : Analysis.type_breakdown) =
    ( (match r.Analysis.hint_type with
      | Plan.Iata -> 0 | Plan.CityName -> 1 | Plan.Clli -> 2
      | Plan.Locode -> 3 | Plan.FacilityAddr -> 4 | Plan.Icao -> 5),
      annot_name r.Analysis.annot )
  in
  let sorted = List.sort (fun a b -> compare (order a) (order b)) rows in
  Report.table
    ~header:[ "geohint"; "annotation"; "good"; "promising" ]
    (List.map
       (fun (r : Analysis.type_breakdown) ->
         [
           Plan.hint_type_name r.Analysis.hint_type;
           annot_name r.Analysis.annot;
           string_of_int r.Analysis.n_good;
           string_of_int r.Analysis.n_promising;
         ])
       sorted);
  Report.note "NCs mixing geohint types: %d (paper: 31 of 795 good NCs)" mixed;
  Report.note "paper (good NCs): IATA 51.7%% (23.6%% with state/country), city 38.9%%,";
  Report.note "CLLI 12.1%%, LOCODE 1.3%%, facility 0.3%%."

(* --- figure 9 --- *)

let fig9 () =
  Report.section "Figure 9: router geolocation, Hoiho vs HLOC vs DRoP vs undns";
  let _, truth, p = run_for aug20 in
  let suffixes = Oper.validation_suffixes in
  let cmps = Validate.compare_methods p truth ~suffixes in
  let cell (s : Validate.scores) =
    Printf.sprintf "%3.0f/%3.0f/%3.0f" (Validate.tp_pct s) (Validate.fp_pct s)
      (Validate.fn_pct s)
  in
  Report.table
    ~header:[ "suffix"; "n"; "hoiho tp/fp/fn%"; "hloc"; "drop"; "undns" ]
    (List.map
       (fun (c : Validate.comparison) ->
         [ c.Validate.suffix; string_of_int c.Validate.n; cell c.Validate.hoiho;
           cell c.Validate.hloc; cell c.Validate.drop; cell c.Validate.undns ])
       cmps);
  let mean get =
    List.fold_left (fun a c -> a +. Validate.tp_pct (get c)) 0.0 cmps
    /. float_of_int (List.length cmps)
  in
  Report.paper_vs "hoiho average correct" "94.0%"
    (Printf.sprintf "%.1f%%" (mean (fun (c : Validate.comparison) -> c.Validate.hoiho)));
  Report.paper_vs "hloc average correct" "73.1%"
    (Printf.sprintf "%.1f%%" (mean (fun (c : Validate.comparison) -> c.Validate.hloc)));
  Report.paper_vs "drop average correct" "56.6%"
    (Printf.sprintf "%.1f%%" (mean (fun (c : Validate.comparison) -> c.Validate.drop)));
  let agg get =
    List.fold_left
      (fun (tp, fp) (c : Validate.comparison) ->
        let s = get c in
        (tp + s.Validate.tp, fp + s.Validate.fp))
      (0, 0) cmps
  in
  let ppv (tp, fp) = Report.pct tp (tp + fp) in
  Report.paper_vs "PPV undns" "98.3%"
    (Printf.sprintf "%.1f%%" (ppv (agg (fun c -> c.Validate.undns))));
  Report.paper_vs "PPV hoiho" "95.6%"
    (Printf.sprintf "%.1f%%" (ppv (agg (fun c -> c.Validate.hoiho))));
  Report.paper_vs "PPV drop" "87.2%"
    (Printf.sprintf "%.1f%%" (ppv (agg (fun c -> c.Validate.drop))));
  Report.paper_vs "PPV hloc" "85.1%"
    (Printf.sprintf "%.1f%%" (ppv (agg (fun c -> c.Validate.hloc))))

(* --- table 5 --- *)

let table5 () =
  Report.section "Table 5: most frequently learned three-letter geohints";
  let _, _, p = run_for aug20 in
  let rows = Analysis.table5 ~top:8 p in
  Report.table
    ~header:[ "hint"; "#sfx"; "location"; "iata?"; "alternatives" ]
    (List.map
       (fun (r : Analysis.learned_freq) ->
         [
           r.Analysis.hint;
           string_of_int r.Analysis.n_suffixes;
           City.describe r.Analysis.city;
           (if r.Analysis.in_iata_dict then "(x)" else "");
           String.concat ", "
             (List.map (fun (c, n) -> Printf.sprintf "%s:%d" c n) r.Analysis.alternatives);
         ])
       rows);
  Report.note "paper: ash:12 (Ashburn), tor:10 (Toronto), wdc:9 (Washington),";
  Report.note "tok:8 (Tokyo), zur:8 (Zurich), ldn:7 (London); 4 of 6 collide with";
  Report.note "IATA codes ((x) marks a collision)."

(* --- table 6 --- *)

let table6 () =
  Report.section "Table 6: validation of learned geohints per suffix";
  let _, truth, p = run_for aug20 in
  let suffixes = Oper.validation_suffixes in
  let checks = Validate.check_learned p truth ~suffixes in
  let rows =
    List.filter_map
      (fun suffix ->
        let of_suffix =
          List.filter
            (fun (c : Validate.learned_check) -> c.Validate.suffix = suffix)
            checks
        in
        if of_suffix = [] then None
        else begin
          let ok =
            List.length
              (List.filter (fun (c : Validate.learned_check) -> c.Validate.ok) of_suffix)
          in
          let n = List.length of_suffix in
          Some [ suffix; Printf.sprintf "%d/%d" ok n; Report.fmt_pct ok n ]
        end)
      suffixes
  in
  Report.table ~header:[ "suffix"; "verified"; "fraction" ] rows;
  let ok =
    List.length (List.filter (fun (c : Validate.learned_check) -> c.Validate.ok) checks)
  in
  let n = List.length checks in
  Report.paper_vs "overall verified learned geohints" "92/117 (78.6%)"
    (Printf.sprintf "%d/%d (%s)" ok n (Report.fmt_pct ok n));
  List.iter
    (fun (c : Validate.learned_check) ->
      if not c.Validate.ok then
        Report.note "  wrong: %s %S learned as %s (operator meant %s)" c.Validate.suffix
          c.Validate.hint
          (City.describe c.Validate.learned_city)
          (Option.value c.Validate.true_city_key ~default:"<not a geohint>"))
    checks

(* --- figure 10 --- *)

let fig10 () =
  Report.section "Figure 10: properties of learned geohints";
  let _, _, p = run_for aug20 in
  let prox = Analysis.fig10a p in
  let frac_within ms = Stat.fraction (fun x -> x <= ms) prox in
  Report.subsection "(a) best-case RTT from the closest VP to learned locations";
  Report.table
    ~header:[ "<= ms"; "CDF" ]
    (List.map
       (fun th -> [ Printf.sprintf "%.0f" th; Printf.sprintf "%.3f" (frac_within th) ])
       [ 2.; 5.; 10.; 22.; 50. ]);
  Report.paper_vs "learned hints within 10 ms of a VP" "48.6%"
    (Printf.sprintf "%.1f%%" (100.0 *. frac_within 10.0));
  Report.paper_vs "learned hints within 22 ms of a VP" "80%"
    (Printf.sprintf "%.1f%%" (100.0 *. frac_within 22.0));
  Report.subsection "(b) distance from learned location to same-code airport";
  let dists = Analysis.fig10b p in
  if dists = [] then Report.note "no learned hints collide with airport codes in this run"
  else begin
    let far = Stat.fraction (fun d -> d > 1000.0) dists in
    Report.paper_vs "collisions >1000 km from the airport" "93.5%"
      (Printf.sprintf "%.1f%%" (100.0 *. far));
    Report.paper_vs "median distance to same-code airport" ">=7600 km"
      (Printf.sprintf "%.0f km" (Stat.median dists))
  end

(* --- figure 11 --- *)

let fig11 () =
  Report.section "Figure 11: learned-geohint correctness vs VP proximity";
  let _, truth, p = run_for aug20 in
  let entries = Analysis.fig11 p truth ~suffixes:Oper.validation_suffixes in
  Report.table
    ~header:[ "closest VP <= ms"; "n"; "correct" ]
    (List.map
       (fun th ->
         let within = List.filter (fun (x, _) -> x <= th) entries in
         [
           Printf.sprintf "%.0f" th;
           string_of_int (List.length within);
           Printf.sprintf "%.0f%%" (100.0 *. Analysis.accuracy_at th entries);
         ])
       [ 7.; 11.; 16.; 50. ]);
  Report.note "paper: 90%% correct at <=7 ms, 84%% at <=11 ms, 80%% at <=16 ms;";
  Report.note "closer VPs produce more reliable learned geohints."

(* --- ablation --- *)

let ablation () =
  Report.section "Ablation: value of learning operator geohints (stage 4)";
  let ds, truth, _ = run_for aug20 in
  let a = Analysis.ablation ~db:(Truth.db truth) ds ~suffixes:Oper.validation_suffixes in
  let line (s : Validate.scores) =
    Printf.sprintf "correct %.1f%%  PPV %.1f%%" (Validate.tp_pct s)
      (100.0 *. Validate.ppv s)
  in
  Report.paper_vs "with learned geohints" "94.0% / 95.6%" (line a.Analysis.with_learning);
  Report.paper_vs "without learned geohints" "82.4% / 94.5%"
    (line a.Analysis.without_learning)

(* --- CBG feasibility (Cai 2015) --- *)

let cai () =
  Report.section "Cai 2015: fraction of inferred locations outside CBG bounds";
  let _, truth, p = run_for aug20 in
  (* evaluate across every geohint-embedding suffix, as Cai probed
     DRoP's full published dataset *)
  let f = Analysis.cai_feasibility p ~suffixes:(Truth.geo_suffixes truth) in
  Report.paper_vs "DRoP locations outside feasible region" "46%"
    (Printf.sprintf "%.1f%% (of %d)" (100.0 *. f.Analysis.drop_infeasible) f.Analysis.n_drop);
  Report.paper_vs "Hoiho locations outside feasible region" "(small)"
    (Printf.sprintf "%.1f%% (of %d)" (100.0 *. f.Analysis.hoiho_infeasible) f.Analysis.n_hoiho);
  Report.note "DRoP interprets dictionaries verbatim, so repurposed codes";
  Report.note "(\"ash\" meaning Ashburn) decode to places the speed of light rules out."

(* --- stale-hostname detection (section 7) --- *)

let stale () =
  Report.section "Stale-hostname detection (section 7, Zhang 2006 mitigation)";
  let _, _, p = run_for aug20 in
  let a = Analysis.stale_accuracy p in
  Report.note "flagged %d hostnames as stale across all usable NCs" a.Hoiho.Stale.flagged;
  Report.note "truly stale among flagged: %d (precision %.1f%%)" a.Hoiho.Stale.true_stale
    (100.0 *. Hoiho.Stale.precision a);
  Report.note "stale hostnames present: %d (recall %.1f%%)" a.Hoiho.Stale.actual_stale
    (100.0 *. Hoiho.Stale.recall a);
  Report.note "(the paper cites Zhang 2006: ~0.5%% of a large network's";
  Report.note "hostnames carried incorrect geohints)"

(* --- ASN conventions (platform capability, section 3.4) --- *)

let asn () =
  Report.section "ASN-extraction conventions (the Hoiho platform, section 3.4)";
  let ds, truth, _ = run_for aug20 in
  let groups = Dataset.by_suffix ds in
  let learned =
    List.filter_map
      (fun (suffix, routers) ->
        let samples = Hoiho.Asnconv.samples_of_routers routers ~suffix in
        match Hoiho.Asnconv.learn ~suffix samples with
        | Some t when Hoiho.Asnconv.usable t -> Some (suffix, t)
        | _ -> None)
      groups
  in
  Report.note "usable ASN conventions learned for %d suffixes" (List.length learned);
  let tp, fp, fn =
    List.fold_left
      (fun (tp, fp, fn) (_, (t : Hoiho.Asnconv.t)) ->
        ( tp + t.Hoiho.Asnconv.counts.Hoiho.Asnconv.tp,
          fp + t.Hoiho.Asnconv.counts.Hoiho.Asnconv.fp,
          fn + t.Hoiho.Asnconv.counts.Hoiho.Asnconv.fn ))
      (0, 0, 0) learned
  in
  Report.note "hostnames with ASN extracted correctly: %d (fp %d, fn %d)" tp fp fn;
  (match learned with
  | (suffix, t) :: _ ->
      Report.note "e.g. %s: %s" suffix t.Hoiho.Asnconv.source;
      (match Truth.find truth suffix with
      | Some op ->
          Report.note "     operator's own ASN: %d" op.Hoiho_netsim.Oper.asn
      | None -> ())
  | [] -> ());
  Report.note "(not a table of this paper: the ASN capability is the IMC 2020";
  Report.note "feature of the Hoiho framework the paper builds on)"

(* --- spoofing-VP detection (section 5.1.4 future work) --- *)

let spoof () =
  Report.section "Spoofing-VP detection (section 5.1.4 future work)";
  let base = List.assoc aug20 (presets ()) in
  let config =
    { base with Generate.label = aug20 ^ " +spoof"; n_spoofing_vps = 7 }
  in
  let ds, truth = Generate.generate config in
  let flagged = Hoiho.Vpfilter.detect ds in
  Report.note "VPs with spoofed measurements injected: 7 (the paper found 7)";
  Report.note "VPs flagged by disc-compatibility scoring: %d (%s)"
    (List.length flagged)
    (String.concat "," (List.map string_of_int flagged));
  let db = Truth.db truth in
  let score dataset =
    let p = Pipeline.run ~db dataset in
    let suffixes = Oper.validation_suffixes in
    let agg =
      List.fold_left
        (fun (tp, total) suffix ->
          let gts = Validate.ground_truth_hostnames dataset ~suffix in
          let s =
            Validate.score
              (fun gt -> Pipeline.geolocate p gt.Validate.hostname)
              gts
          in
          (tp + s.Validate.tp, total + Validate.total s))
        (0, 0) suffixes
    in
    Report.pct (fst agg) (snd agg)
  in
  Report.note "correct geolocations with spoofers present: %.1f%%" (score ds);
  Report.note "after stripping flagged VPs:               %.1f%%"
    (score (Hoiho.Vpfilter.strip ds flagged))

(* --- router names (platform capability, IMC 2019) --- *)

let names () =
  Report.section "Router-name conventions (the Hoiho platform, IMC 2019)";
  let ds, _, _ = run_for aug20 in
  let groups = Dataset.by_suffix ds in
  let learned =
    List.filter_map
      (fun (suffix, routers) ->
        match Hoiho.Rname.learn ~suffix routers with
        | Some t when Hoiho.Rname.usable t -> Some (suffix, t)
        | _ -> None)
      groups
  in
  Report.note "usable router-name conventions learned for %d suffixes"
    (List.length learned);
  let tp, fp =
    List.fold_left
      (fun (tp, fp) (_, (t : Hoiho.Rname.t)) ->
        (tp + t.Hoiho.Rname.counts.Hoiho.Rname.tp,
         fp + t.Hoiho.Rname.counts.Hoiho.Rname.fp))
      (0, 0) learned
  in
  Report.note "multi-interface routers named consistently and uniquely: %d (fp %d)"
    tp fp;
  (match learned with
  | (suffix, t) :: _ -> Report.note "e.g. %s: %s" suffix t.Hoiho.Rname.source
  | [] -> ());
  Report.note "(the IMC 2019 capability of the framework; completes the";
  Report.note "names / ASNs / geolocation platform triple of section 3.4)"

(* --- TBG anchoring (conclusion: "the most promising next step") --- *)

let tbg () =
  Report.section "TBG: naming-convention anchors geolocating adjacent routers";
  let _, _, p = run_for aug20 in
  let inferences, n_anchors = Hoiho.Tbg.coverage_gain p in
  Report.note "anchors (routers geolocated by usable NCs): %d" n_anchors;
  Report.note "additional routers geolocated via anchored neighbors: %d"
    (List.length inferences);
  let correct =
    List.filter
      (fun (inf : Hoiho.Tbg.inference) ->
        match
          Array.find_opt
            (fun (r : Router.t) -> r.Router.id = inf.Hoiho.Tbg.router_id)
            p.Pipeline.dataset.Dataset.routers
        with
        | Some { Router.truth = Some t; _ } ->
            Validate.correct inf.Hoiho.Tbg.city t.Router.coord
        | _ -> false)
      inferences
  in
  Report.note "of which within 40 km of the true location: %d (%.1f%%)"
    (List.length correct)
    (Report.pct (List.length correct) (List.length inferences));
  Report.note "(implements the paper's §3.1/§8 direction: regex-derived";
  Report.note "locations as anchors for topology-based geolocation)"

(* --- figure 13 --- *)

let show_phase consist samples label cands =
  Report.subsection label;
  let scored =
    List.map
      (fun c ->
        let counts = Evalx.eval_cand_counts consist Fixtures.db c samples in
        (c, counts))
      cands
  in
  let ranked =
    List.sort (fun (_, a) (_, b) -> compare (Evalx.atp b) (Evalx.atp a)) scored
  in
  List.iteri
    (fun i ((c : Cand.t), counts) ->
      if i < 6 then
        Printf.printf "  tp=%2d fp=%2d fn=%2d unk=%2d atp=%3d ppv=%3.0f%%  %s\n"
          counts.Evalx.tp counts.Evalx.fp counts.Evalx.fn counts.Evalx.unk
          (Evalx.atp counts)
          (100.0 *. Evalx.ppv counts)
          c.Cand.source)
    ranked;
  if List.length ranked > 6 then
    Report.note "  ... and %d more candidates" (List.length ranked - 6)

let fig13 () =
  Report.section "Figure 13: regex generation phases on an alter.net-style suffix";
  let ds, routers = Fixtures.alter_net () in
  let consist = Hoiho.Consist.create ds in
  let samples =
    Hoiho.Apparent.build_samples consist Fixtures.db ~suffix:"alter.net" routers
  in
  let tagged =
    List.filter (fun (s : Hoiho.Apparent.sample) -> s.Hoiho.Apparent.tags <> []) samples
  in
  Report.note "%d hostnames, %d with apparent geohints" (List.length samples)
    (List.length tagged);
  let p1 = Hoiho.Regen.phase1 ~suffix:"alter.net" tagged in
  show_phase consist samples "phase 1: base regexes" p1;
  let p2 = Hoiho.Regen.phase2 p1 in
  show_phase consist samples "phase 2: merged regexes (\\d+ -> \\d*)" p2;
  let pool = Cand.dedup (p1 @ p2) in
  let p3 = Hoiho.Regen.phase3 samples pool in
  show_phase consist samples "phase 3: embedded character classes" p3;
  match Ncsel.build consist Fixtures.db (Cand.dedup (pool @ p3)) samples with
  | None -> Report.note "no NC built"
  | Some nc ->
      Report.subsection "phase 4: selected naming convention (regex set)";
      List.iter (fun (c : Cand.t) -> Printf.printf "  %s\n" c.Cand.source) nc.Ncsel.cands;
      Printf.printf "  tp=%d fp=%d fn=%d unk=%d atp=%d ppv=%.0f%%\n"
        nc.Ncsel.counts.Evalx.tp nc.Ncsel.counts.Evalx.fp nc.Ncsel.counts.Evalx.fn
        nc.Ncsel.counts.Evalx.unk (Evalx.atp nc.Ncsel.counts)
        (100.0 *. Evalx.ppv nc.Ncsel.counts);
      Report.note "paper's NC #7 also combines IATA, CLLI and city-name regexes";
      Report.note "to cover all of the operator's formats"

(* --- figure 2 --- *)

let fig2 () =
  Report.section "Figure 2: DRoP's rigid rules vs Hoiho regexes (360.net style)";
  let ds, routers = Fixtures.three_sixty_net () in
  let consist = Hoiho.Consist.create ds in
  let hostnames = List.concat_map (fun (r : Router.t) -> r.Router.hostnames) routers in
  let drop = Hoiho_baselines.Drop.learn Fixtures.db ds in
  let drop_matched =
    List.filter (fun h -> Hoiho_baselines.Drop.infer drop Fixtures.db h <> None) hostnames
  in
  let result = Pipeline.run_suffix consist Fixtures.db ~suffix:"360.net" routers in
  let hoiho_matched =
    match result.Pipeline.nc with
    | None -> []
    | Some nc ->
        List.filter
          (fun h ->
            List.exists
              (fun (c : Cand.t) -> Hoiho_rx.Engine.matches c.Cand.regex h)
              nc.Ncsel.cands)
          hostnames
  in
  Report.note "hostnames in the suffix: %d (two different shapes)" (List.length hostnames);
  (match Hoiho_baselines.Drop.find_rule drop "360.net" with
  | Some rule ->
      Report.note "DRoP rule: geohint at position %d from the end, exactly %d labels"
        rule.Hoiho_baselines.Drop.pos_from_end rule.Hoiho_baselines.Drop.n_labels
  | None -> Report.note "DRoP learned no rule");
  Report.paper_vs "DRoP coverage" "3 of 7 hostnames"
    (Printf.sprintf "%d of %d" (List.length drop_matched) (List.length hostnames));
  (match result.Pipeline.nc with
  | Some nc ->
      List.iter
        (fun (c : Cand.t) -> Printf.printf "  hoiho: %s\n" c.Cand.source)
        nc.Ncsel.cands
  | None -> ());
  Report.paper_vs "Hoiho coverage" "7 of 7 hostnames"
    (Printf.sprintf "%d of %d" (List.length hoiho_matched) (List.length hostnames))

(* --- micro-benchmarks --- *)

let micro () =
  Report.section "Micro-benchmarks (bechamel, ns per run)";
  let open Bechamel in
  let open Toolkit in
  let regex =
    Hoiho_rx.Engine.compile_exn
      {|^.+\.([a-z]{3})\d+\.([a-z]{2})\.[a-z]{3}\.zayo\.com$|}
  in
  let hostname = "zayo-ntt.mpr1.lhr15.uk.zip.zayo.com" in
  let ds, routers = Fixtures.alter_net () in
  let consist = Hoiho.Consist.create ds in
  let router0 = List.hd routers in
  let host0 = List.hd router0.Router.hostnames in
  let samples =
    Hoiho.Apparent.build_samples consist Fixtures.db ~suffix:"alter.net" routers
  in
  let tagged =
    List.filter (fun (s : Hoiho.Apparent.sample) -> s.Hoiho.Apparent.tags <> []) samples
  in
  let a = Hoiho_geo.Coord.make ~lat:51.47 ~lon:(-0.45) in
  let b = Hoiho_geo.Coord.make ~lat:40.64 ~lon:(-73.78) in
  let tests =
    Test.make_grouped ~name:"hoiho" ~fmt:"%s.%s"
      [
        Test.make ~name:"regex-exec"
          (Staged.stage (fun () -> ignore (Hoiho_rx.Engine.exec regex hostname)));
        Test.make ~name:"haversine"
          (Staged.stage (fun () -> ignore (Hoiho_geo.Coord.distance_km a b)));
        Test.make ~name:"stage2-tag-hostname"
          (Staged.stage (fun () ->
               ignore
                 (Hoiho.Apparent.tag_hostname consist Fixtures.db ~suffix:"alter.net"
                    router0 host0)));
        Test.make ~name:"stage3-phase1"
          (Staged.stage (fun () -> ignore (Hoiho.Regen.phase1 ~suffix:"alter.net" tagged)));
        Test.make ~name:"suffix-pipeline"
          (Staged.stage (fun () ->
               ignore
                 (Pipeline.run_suffix consist Fixtures.db ~suffix:"alter.net" routers)));
      ]
  in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      instance raw
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] ->
          let pretty =
            if est > 1_000_000.0 then Printf.sprintf "%.2f ms" (est /. 1_000_000.0)
            else if est > 1_000.0 then Printf.sprintf "%.2f us" (est /. 1_000.0)
            else Printf.sprintf "%.0f ns" est
          in
          rows := [ name; pretty ] :: !rows
      | _ -> rows := [ name; "(no estimate)" ] :: !rows)
    results;
  Report.table ~header:[ "operation"; "time/run" ] (List.sort compare !rows)

(* --- pipeline performance (parallel pool + regex fast path) --- *)

let perf () =
  Report.section "Performance: parallel pipeline + regex fast path";
  (* a fresh dataset, not the cached one: the sequential run must start
     from cold caches so the two timings are comparable *)
  let config = List.assoc aug20 (presets ()) in
  let config = { config with Generate.label = aug20 } in
  let ds, truth = Generate.generate config in
  let db = Truth.db truth in
  let n_hostnames =
    Array.fold_left
      (fun a (r : Router.t) -> a + List.length r.Router.hostnames)
      0 ds.Dataset.routers
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let x = f () in
    (x, (Unix.gettimeofday () -. t0) *. 1000.0)
  in
  let module Obs = Hoiho_obs.Obs in
  (* each run gets a registry scoped to itself, so the two snapshots are
     directly comparable (work counters must come out identical) *)
  Obs.reset ();
  let seq, seq_ms = time (fun () -> Pipeline.run ~db ~jobs:1 ds) in
  let seq_metrics = seq.Pipeline.metrics in
  let pf_calls, pf_skips = Hoiho_rx.Engine.prefilter_stats () in
  let jobs = max 2 (Hoiho_util.Pool.default_jobs ()) in
  Obs.reset ();
  let par, par_ms = time (fun () -> Pipeline.run ~db ~jobs ds) in
  let par_metrics = par.Pipeline.metrics in
  let identical = seq.Pipeline.results = par.Pipeline.results in
  (* pool.* counters are scheduling-dependent; everything else counts
     work and must not vary with the jobs setting *)
  let work_counters (s : Obs.snapshot) =
    List.filter
      (fun (name, _) -> not (String.length name >= 5 && String.sub name 0 5 = "pool."))
      s.Obs.counters
  in
  let counters_identical = work_counters seq_metrics = work_counters par_metrics in
  let speedup = seq_ms /. par_ms in
  let samples_per_sec = float_of_int n_hostnames /. (par_ms /. 1000.0) in
  let hit_rate =
    if pf_calls = 0 then 0.0 else float_of_int pf_skips /. float_of_int pf_calls
  in
  Report.note "dataset: %d routers, %d hostnames" (Dataset.n_routers ds) n_hostnames;
  Report.note "sequential (jobs=1):  %8.1f ms" seq_ms;
  Report.note "parallel   (jobs=%d):  %8.1f ms  (%.2fx, %.0f hostnames/s)" jobs
    par_ms speedup samples_per_sec;
  Report.note "results identical across jobs settings: %b" identical;
  Report.note "work counters identical across jobs settings: %b" counters_identical;
  Report.note "prefilter: %d exec calls, %d skipped by literal scan (%.1f%%)"
    pf_calls pf_skips (100.0 *. hit_rate);
  (match Obs.find_histogram par_metrics "pipeline.suffix_ms" with
  | Some h ->
      Report.note "per-suffix wall time: n=%d p50=%.2f ms p95=%.2f ms max=%.2f ms"
        h.Obs.n h.Obs.p50 h.Obs.p95 h.Obs.max
  | None -> ());
  (* per-layer micro timings *)
  let ns_per iters f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      ignore (Sys.opaque_identity (f ()))
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters
  in
  let re_src = {|^.+\.([a-z]{3})\d+\.([a-z]{2})\.[a-z]{3}\.zayo\.com$|} in
  let regex = Hoiho_rx.Engine.compile_exn re_src in
  let miss = "ae-125.edge4.frankfurt1.level3.net" in
  let hit = "zayo-ntt.mpr1.lhr15.uk.zip.zayo.com" in
  let vm = Hoiho_rx.Nfavm.compile (Hoiho_rx.Parse.parse_exn {|[a-z]{3}\d+\.[a-z]+|}) in
  let pool = Hoiho_util.Pool.get 2 in
  let ints = List.init 64 Fun.id in
  let exec_hit_ns = ns_per 20_000 (fun () -> Hoiho_rx.Engine.exec regex hit) in
  let exec_miss_ns = ns_per 20_000 (fun () -> Hoiho_rx.Engine.exec regex miss) in
  let exec_unf_ns =
    ns_per 20_000 (fun () -> Hoiho_rx.Engine.exec_unfiltered regex miss)
  in
  let nfavm_ns = ns_per 20_000 (fun () -> Hoiho_rx.Nfavm.matches vm hit) in
  let pool_ns =
    ns_per 200 (fun () -> Hoiho_util.Pool.parallel_map pool (fun x -> x + 1) ints)
  in
  Report.table
    ~header:[ "operation"; "time/run" ]
    [
      [ "exec, match (prefilter seeds start)"; Printf.sprintf "%.0f ns" exec_hit_ns ];
      [ "exec, miss (prefilter bails)"; Printf.sprintf "%.0f ns" exec_miss_ns ];
      [ "exec, miss, no prefilter"; Printf.sprintf "%.0f ns" exec_unf_ns ];
      [ "nfavm matches (sparse sets)"; Printf.sprintf "%.0f ns" nfavm_ns ];
      [ "pool parallel_map, 64 items"; Printf.sprintf "%.0f ns" pool_ns ];
    ];
  (* chaos resilience: with injection off, a replay must reproduce the
     parallel run's learned conventions exactly; with injection on, the
     run must complete, surfacing faults as degraded suffix results
     rather than exceptions *)
  Obs.reset ();
  let replay, replay_ms = time (fun () -> Pipeline.run ~db ~jobs ds) in
  let replay_identical = replay.Pipeline.results = par.Pipeline.results in
  (* tracing overhead: the warm replay above is the untraced baseline;
     run the same warm pipeline once more with span collection on. The
     contract (DESIGN.md §10) is < 10% wall-clock overhead *)
  let module Trace = Hoiho_obs.Trace in
  Obs.reset ();
  Trace.configure ~shards:16 ~capacity:(1 lsl 18) ();
  Trace.set_enabled true;
  let traced, traced_ms = time (fun () -> Pipeline.run ~db ~jobs ds) in
  Trace.set_enabled false;
  let trace_spans = List.length (Trace.spans ()) in
  let trace_dropped = Trace.dropped () in
  Trace.configure ();
  let traced_identical = traced.Pipeline.results = par.Pipeline.results in
  let trace_overhead = (traced_ms -. replay_ms) /. replay_ms in
  let trace_ok = trace_overhead < 0.10 in
  Report.note
    "tracing: untraced %8.1f ms, traced %8.1f ms (overhead %+.1f%%, %d spans, %d dropped)"
    replay_ms traced_ms (100.0 *. trace_overhead) trace_spans trace_dropped;
  Report.note "traced results identical to untraced: %b" traced_identical;
  Report.note "tracing overhead within the 10%% contract: %b" trace_ok;
  if (not !quick) && not trace_ok then
    failwith
      (Printf.sprintf "tracing overhead %.1f%% exceeds the 10%% contract"
         (100.0 *. trace_overhead));
  Obs.reset ();
  let cdb, cds = Chaos.apply (Chaos.config ~level:2 4242) db ds in
  let chaos_run, chaos_ms = time (fun () -> Pipeline.run ~db:cdb ~jobs cds) in
  let chaos_metrics = chaos_run.Pipeline.metrics in
  let chaos_degraded =
    List.length
      (List.filter
         (fun (r : Pipeline.suffix_result) -> r.Pipeline.degraded <> None)
         chaos_run.Pipeline.results)
  in
  let chaos_counter name =
    match Obs.find_counter chaos_metrics name with Some n -> n | None -> 0 in
  let chaos_injected =
    chaos_counter "chaos.hostnames_mangled"
    + chaos_counter "chaos.dict_entries_dropped"
    + chaos_counter "chaos.rtts_dropped"
    + chaos_counter "chaos.rtt_outliers"
    + chaos_counter "chaos.rtts_negated"
    + chaos_counter "chaos.alias_errors"
  in
  Report.note "chaos-off replay identical to chaos-off run: %b" replay_identical;
  Report.note
    "chaos seed=4242 level=2: %d injections, %d/%d suffix groups degraded, %.1f ms"
    chaos_injected chaos_degraded
    (List.length chaos_run.Pipeline.results)
    chaos_ms;
  (* learn-once / apply-many serving path: snapshot the learned model
     through the codec (encode + strict decode, as a real consumer
     would), then measure apply throughput over every hostname of the
     dataset — cold vs warm cache, sequential vs parallel *)
  let model =
    let m = Hoiho.Learned_io.of_pipeline par in
    match Hoiho.Learned_io.decode (Hoiho.Learned_io.encode m) with
    | Ok m -> m
    | Error e -> failwith (Hoiho.Learned_io.error_to_string e)
  in
  let hostnames =
    Array.to_list ds.Dataset.routers
    |> List.concat_map (fun (r : Router.t) -> r.Router.hostnames)
  in
  let n_apply = List.length hostnames in
  let apply_run ~jobs =
    let serve = Hoiho_serve.Serve.create model in
    let cold, cold_ms =
      time (fun () -> Hoiho_serve.Serve.apply_batch ~jobs serve hostnames)
    in
    let _, warm_ms =
      time (fun () -> ignore (Hoiho_serve.Serve.apply_batch ~jobs serve hostnames))
    in
    (cold, cold_ms, warm_ms)
  in
  let hps ms = float_of_int n_apply /. (ms /. 1000.0) in
  let apply1, apply1_cold_ms, apply1_warm_ms = apply_run ~jobs:1 in
  let applyn, applyn_cold_ms, applyn_warm_ms = apply_run ~jobs in
  let apply_identical = apply1 = applyn in
  let apply_matches_inproc =
    List.for_all
      (fun (h, (answer : Hoiho_serve.Serve.answer)) ->
        let city, confidence = Pipeline.geolocate_conf par h in
        answer.Hoiho_serve.Serve.city = city
        && answer.Hoiho_serve.Serve.confidence = confidence)
      apply1
  in
  Report.note "apply (serving path, %d hostnames through the snapshot codec):"
    n_apply;
  Report.note "  jobs=1:  cold %8.1f ms (%.0f hostnames/s), warm %8.1f ms (%.0f/s)"
    apply1_cold_ms (hps apply1_cold_ms) apply1_warm_ms (hps apply1_warm_ms);
  Report.note "  jobs=%d:  cold %8.1f ms (%.0f hostnames/s), warm %8.1f ms (%.0f/s)"
    jobs applyn_cold_ms (hps applyn_cold_ms) applyn_warm_ms (hps applyn_warm_ms);
  Report.note "  results identical across jobs settings: %b" apply_identical;
  Report.note "  byte-identical to in-process geolocate: %b" apply_matches_inproc;
  (* serve: the same snapshot behind the network daemon — sustained
     req/s and latency quantiles over a real loopback socket, with as
     many keep-alive clients as serving domains *)
  let serve_bench ?(mutate = fun c -> c) ~jobs () =
    let module Server = Hoiho_net.Server in
    let cfg = mutate { Server.default_config with Server.jobs } in
    let server = Server.start ~config:cfg model in
    let port = Server.port server in
    let per_client = if !quick then 200 else 1000 in
    let hosts = Array.of_list hostnames in
    let nh = Array.length hosts in
    let write_all fd s =
      let n = String.length s in
      let rec go off =
        if off < n then
          match Unix.write_substring fd s off (n - off) with
          | w -> go (off + w)
          | exception Unix.Unix_error (EINTR, _, _) -> go off
      in
      go 0
    in
    let find_crlfcrlf s =
      let n = String.length s in
      let rec go i =
        if i + 3 >= n then None
        else if
          s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
        then Some i
        else go (i + 1)
      in
      go 0
    in
    let content_length head =
      let low = String.lowercase_ascii head in
      let key = "content-length:" in
      let rec find i =
        if i + String.length key > String.length low then
          failwith "serve bench: response without content-length"
        else if String.sub low i (String.length key) = key then begin
          let rest =
            String.sub low
              (i + String.length key)
              (String.length low - i - String.length key)
          in
          let line =
            match String.index_opt rest '\r' with
            | Some e -> String.sub rest 0 e
            | None -> rest
          in
          int_of_string (String.trim line)
        end
        else find (i + 1)
      in
      find 0
    in
    let t0 = Obs.now_ms () in
    let clients =
      List.init jobs (fun cid ->
          Domain.spawn (fun () ->
              let fd = Unix.socket PF_INET SOCK_STREAM 0 in
              Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port));
              (try Unix.setsockopt fd Unix.TCP_NODELAY true
               with Unix.Unix_error _ -> ());
              let pending = ref "" in
              let rbuf = Bytes.create 8192 in
              let fill () =
                match Unix.read fd rbuf 0 (Bytes.length rbuf) with
                | 0 -> failwith "serve bench: server closed the connection"
                | n -> pending := !pending ^ Bytes.sub_string rbuf 0 n
                | exception Unix.Unix_error (EINTR, _, _) -> ()
              in
              let read_response () =
                let rec hdr () =
                  match find_crlfcrlf !pending with
                  | Some i -> i
                  | None ->
                      fill ();
                      hdr ()
                in
                let he = hdr () in
                let clen = content_length (String.sub !pending 0 he) in
                let total = he + 4 + clen in
                while String.length !pending < total do
                  fill ()
                done;
                pending :=
                  String.sub !pending total (String.length !pending - total)
              in
              let lat = Array.make per_client 0.0 in
              for i = 0 to per_client - 1 do
                let h = hosts.((cid + (i * jobs)) mod nh) in
                let t = Obs.now_ms () in
                write_all fd
                  (Printf.sprintf "GET /geolocate?h=%s HTTP/1.1\r\nHost: b\r\n\r\n"
                     (Hoiho_net.Http.pct_encode h));
                read_response ();
                lat.(i) <- Obs.now_ms () -. t
              done;
              Unix.close fd;
              lat))
    in
    let lats = List.concat_map (fun d -> Array.to_list (Domain.join d)) clients in
    let wall_ms = Obs.now_ms () -. t0 in
    Server.stop server;
    let sorted = Array.of_list (List.sort compare lats) in
    let n = Array.length sorted in
    let pct p =
      if n = 0 then 0.0
      else
        let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
        sorted.(max 1 (min n rank) - 1)
    in
    let rps = float_of_int n /. (wall_ms /. 1000.0) in
    (n, rps, pct 50.0, pct 95.0, pct 99.0, wall_ms)
  in
  let serve1_n, serve1_rps, serve1_p50, serve1_p95, serve1_p99, serve1_wall =
    serve_bench ~jobs:1 ()
  in
  let serve4_n, serve4_rps, serve4_p50, serve4_p95, serve4_p99, serve4_wall =
    serve_bench ~jobs:4 ()
  in
  Report.note "serve (daemon on a loopback socket, keep-alive clients = jobs):";
  Report.note
    "  jobs=1: %d requests, %8.0f req/s, p50 %.3f ms, p95 %.3f ms, p99 %.3f ms"
    serve1_n serve1_rps serve1_p50 serve1_p95 serve1_p99;
  Report.note
    "  jobs=4: %d requests, %8.0f req/s, p50 %.3f ms, p95 %.3f ms, p99 %.3f ms"
    serve4_n serve4_rps serve4_p50 serve4_p95 serve4_p99;
  (* health: the full monitoring stack (SLO objectives evaluated by
     the housekeeper + per-response access logging + drift windows)
     against the bare daemon, same harness, warm both runs. Best of
     two trials each side to damp loopback scheduling noise; the
     budget is < 5% req/s. *)
  let health_overhead_bench () =
    let module Server = Hoiho_net.Server in
    let access_path = Filename.temp_file "hoiho_bench_access" ".log" in
    let best mutate =
      let run () =
        let _, rps, _, _, _, _ = serve_bench ~mutate ~jobs:4 () in
        rps
      in
      Float.max (run ()) (run ())
    in
    let plain = best (fun c -> c) in
    let monitored =
      best (fun c ->
          {
            c with
            Server.objectives =
              Some
                [
                  {
                    Hoiho_obs.Health.metric = "latency_p99_ms";
                    max_value = 250.0;
                    fail_ratio = 4.0;
                  };
                  {
                    Hoiho_obs.Health.metric = "error_rate";
                    max_value = 0.05;
                    fail_ratio = 4.0;
                  };
                ];
            access_log = Some access_path;
          })
    in
    (try Sys.remove access_path with Sys_error _ -> ());
    (try Sys.remove (access_path ^ ".1") with Sys_error _ -> ());
    (plain, monitored)
  in
  let health_plain_rps, health_mon_rps = health_overhead_bench () in
  let health_overhead_pct =
    (health_plain_rps -. health_mon_rps) /. health_plain_rps *. 100.0
  in
  let health_budget_pct = 5.0 in
  (* loopback req/s on a 1-2 core host is too noisy to enforce a 5%
     band; the numbers are still recorded *)
  let health_enforced =
    (not !quick) && Domain.recommended_domain_count () >= 4
  in
  let health_ok =
    (not health_enforced) || health_overhead_pct < health_budget_pct
  in
  Report.note "health (monitoring stack vs bare daemon, jobs=4, best of 2):";
  Report.note
    "  bare %8.0f req/s, monitored %8.0f req/s, overhead %.2f%% (budget < \
     %.0f%%, %s)"
    health_plain_rps health_mon_rps health_overhead_pct health_budget_pct
    (if health_enforced then "enforced" else "not enforced");
  if not health_ok then
    failwith
      (Printf.sprintf "health: monitoring overhead %.2f%% exceeds %.0f%%"
         health_overhead_pct health_budget_pct);
  (* incremental relearn (Delta) vs batch on a ~10%-dirty corpus: one
     observation event per dirty group, then relearn only those groups
     against the prior run — the output must encode byte-identically to
     a from-scratch batch learn of the final corpus (metrics
     normalized), and reusing the ~90% clean groups must be >= 3x
     faster than redoing them *)
  let groups = Dataset.by_suffix ds in
  let n_groups = List.length groups in
  let n_dirty = max 1 (n_groups / 10) in
  let garr = Array.of_list groups in
  (* by_suffix sorts descending by size: skip the fattest group and
     stride across the rest so the dirty slice is representative *)
  let stride = max 1 ((n_groups - 1) / n_dirty) in
  let relearn_events =
    List.init n_dirty (fun i ->
        let suffix, routers = garr.(1 + (i * stride mod (n_groups - 1))) in
        let r : Router.t = List.hd routers in
        Hoiho.Delta.Add_hostname
          {
            router = r.Router.id;
            hostname = Printf.sprintf "relearn%d-probe.cr1.%s" i suffix;
          })
  in
  let best_of_3 f =
    let x, ms0 = time f in
    let ms = min ms0 (min (snd (time f)) (snd (time f))) in
    (x, ms)
  in
  let (incr_run, incr_stats), incr_ms =
    best_of_3 (fun () ->
        match Hoiho.Delta.relearn ~jobs ~prior:par relearn_events with
        | Ok pair -> pair
        | Error e -> failwith (Hoiho.Delta.error_to_string e))
  in
  let batch_run, batch_ms =
    best_of_3 (fun () -> Pipeline.run ~db ~jobs incr_run.Pipeline.dataset)
  in
  let normalize_model p =
    {
      (Hoiho.Learned_io.of_pipeline p) with
      Hoiho.Learned_io.metrics = Hoiho_util.Json.Obj [];
    }
  in
  let relearn_identical =
    Hoiho.Learned_io.encode (normalize_model incr_run)
    = Hoiho.Learned_io.encode (normalize_model batch_run)
  in
  if not relearn_identical then
    failwith "relearn: incremental output diverges from batch";
  let relearn_speedup = batch_ms /. incr_ms in
  let dirty_frac =
    float_of_int (List.length incr_stats.Hoiho.Delta.dirty)
    /. float_of_int n_groups
  in
  let relearn_target = 3.0 in
  let relearn_enforced = not !quick in
  let relearn_ok =
    relearn_identical && ((not relearn_enforced) || relearn_speedup >= relearn_target)
  in
  Report.note
    "relearn: %d/%d groups dirty (%.1f%%), incremental %8.1f ms vs batch %8.1f \
     ms (%.2fx, target %.1fx %s)"
    incr_stats.Hoiho.Delta.groups_relearned n_groups (100.0 *. dirty_frac)
    incr_ms batch_ms relearn_speedup relearn_target
    (if relearn_enforced then "enforced" else "not enforced: --quick");
  Report.note "relearn output byte-identical to batch: %b" relearn_identical;
  if relearn_enforced && relearn_speedup < relearn_target then
    failwith
      (Printf.sprintf "relearn: speedup %.2fx below target %.1fx"
         relearn_speedup relearn_target);
  (* allocation on the exec fast path: with the per-domain capture arena
     a miss should allocate nothing beyond the (minor, 5-word) matcher
     state — the cross-domain minor-GC synchronization this avoids is
     what made parallel learn SLOWER than sequential before *)
  let exec_alloc_bytes =
    let iters = 50_000 in
    ignore (Hoiho_rx.Engine.exec_unfiltered regex miss);
    let a0 = Gc.allocated_bytes () in
    for _ = 1 to iters do
      ignore (Sys.opaque_identity (Hoiho_rx.Engine.exec_unfiltered regex miss))
    done;
    (Gc.allocated_bytes () -. a0) /. float_of_int iters
  in
  let exec_match_baseline_ns = 3324.2 in
  let exec_match_reduction = 1.0 -. (exec_hit_ns /. exec_match_baseline_ns) in
  Report.note "exec allocation: %.0f bytes/call (miss, unfiltered)" exec_alloc_bytes;
  Report.note "exec_match vs recorded baseline %.1f ns: %.0f ns (%.0f%% reduction)"
    exec_match_baseline_ns exec_hit_ns (100.0 *. exec_match_reduction);
  (* --- jobs sweep on the paper-scale preset ---
     The paper learns from the Aug '20 IPv4 ITDK (2.56M routers);
     Presets.paper reproduces that magnitude at scale 1.0. The sweep
     takes a proportional slice (HOIHO_BENCH_SCALE, in paper units) so
     small hosts can still run it, and measures the learn wall clock at
     jobs = 1/2/4/8 over the same generated dataset. *)
  let cores = Domain.recommended_domain_count () in
  let sweep_scale =
    let default = if !quick then 0.005 else 0.05 in
    match Sys.getenv_opt "HOIHO_BENCH_SCALE" with
    | Some s -> (
        match float_of_string_opt (String.trim s) with
        | Some f when f > 0.0 -> f
        | _ -> default)
    | None -> default
  in
  let sweep_config = Presets.paper ~scale:sweep_scale () in
  let sweep_ds, sweep_truth = Generate.generate sweep_config in
  let sweep_db = Truth.db sweep_truth in
  let sweep_hostnames =
    Array.fold_left
      (fun a (r : Router.t) -> a + List.length r.Router.hostnames)
      0 sweep_ds.Dataset.routers
  in
  Report.note "jobs sweep: %s — %d routers, %d hostnames, %d core(s)"
    sweep_config.Generate.label
    (Dataset.n_routers sweep_ds)
    sweep_hostnames cores;
  let sweep =
    List.map
      (fun j ->
        Obs.reset ();
        Gc.full_major ();
        let a0 = Gc.allocated_bytes () in
        let p, ms = time (fun () -> Pipeline.run ~db:sweep_db ~jobs:j sweep_ds) in
        let allocated_mb = (Gc.allocated_bytes () -. a0) /. 1e6 in
        (j, p, ms, allocated_mb))
      [ 1; 2; 4; 8 ]
  in
  let _, sweep_p1, sweep_ms1, _ = List.hd sweep in
  let sweep_rows =
    List.map
      (fun (j, p, ms, allocated_mb) ->
        let res_ok = p.Pipeline.results = sweep_p1.Pipeline.results in
        let ctr_ok =
          work_counters p.Pipeline.metrics
          = work_counters sweep_p1.Pipeline.metrics
        in
        (j, ms, sweep_ms1 /. ms, allocated_mb, res_ok, ctr_ok))
      sweep
  in
  Report.table
    ~header:
      [ "jobs"; "wall ms"; "speedup"; "hostnames/s"; "alloc MB (main)";
        "identical" ]
    (List.map
       (fun (j, ms, sp, mb, res_ok, ctr_ok) ->
         [
           string_of_int j;
           Printf.sprintf "%.1f" ms;
           Printf.sprintf "%.2fx" sp;
           Printf.sprintf "%.0f" (float_of_int sweep_hostnames /. (ms /. 1000.0));
           Printf.sprintf "%.1f" mb;
           string_of_bool (res_ok && ctr_ok);
         ])
       sweep_rows);
  let sweep_speedup_at j =
    match List.find_opt (fun (j', _, _, _, _, _) -> j' = j) sweep_rows with
    | Some (_, _, sp, _, _, _) -> sp
    | None -> 0.0
  in
  let sweep_identical =
    List.for_all (fun (_, _, _, _, res_ok, ctr_ok) -> res_ok && ctr_ok) sweep_rows
  in
  let target_speedup = 1.5 in
  (* the speedup target is only a statement about hardware that can
     actually run 4 lanes; on smaller hosts the sweep still proves the
     identity contract and records the curve, but the threshold is
     reported as unenforced rather than silently passed *)
  let sweep_enforced = cores >= 4 in
  let sweep_ok =
    sweep_identical
    && ((not sweep_enforced) || sweep_speedup_at 4 >= target_speedup)
  in
  Report.note "speedup at jobs=4: %.2fx (target %.1fx, %s)" (sweep_speedup_at 4)
    target_speedup
    (if sweep_enforced then "enforced"
     else Printf.sprintf "not enforced: %d core(s) < 4" cores);
  if not sweep_identical then
    failwith "jobs sweep: results or work counters differ across jobs settings";
  if (not !quick) && sweep_enforced && sweep_speedup_at 4 < target_speedup then
    failwith
      (Printf.sprintf "jobs sweep: speedup %.2fx at jobs=4 below target %.1fx"
         (sweep_speedup_at 4) target_speedup);
  (* --- confidence calibration on the paper-scale slice ---
     the confidence subsystem's acceptance gate, measured on the same
     paper-preset dataset as the jobs sweep: decile accuracy must be
     monotone (tolerance 0.05) and ECE must stay under the limit, with
     abstentions scored at zero confidence. *)
  let module Calibration = Hoiho_validate.Calibration in
  let calib =
    Calibration.of_pipeline sweep_p1
      ~suffixes:(Truth.geo_suffixes sweep_truth)
  in
  let calib_monotone = Calibration.monotone calib in
  let calib_ece_limit = 0.15 in
  let calib_ok =
    calib_monotone && calib.Calibration.ece <= calib_ece_limit
  in
  Report.note
    "calibration (%s): %d ground-truth samples (%d answered), Brier %.4f, \
     ECE %.4f (limit %.2f), decile accuracy monotone: %b"
    sweep_config.Generate.label calib.Calibration.total
    calib.Calibration.answered calib.Calibration.brier calib.Calibration.ece
    calib_ece_limit calib_monotone;
  if not calib_ok then
    failwith
      (Printf.sprintf
         "calibration gate failed: ECE %.4f (limit %.2f), monotone %b"
         calib.Calibration.ece calib_ece_limit calib_monotone);
  let calibration_json =
    Hoiho_util.Json.to_string
      (match Calibration.to_json calib with
      | Hoiho_util.Json.Obj fields ->
          Hoiho_util.Json.Obj
            (fields
            @ [
                ("ece_limit", Hoiho_util.Json.Float calib_ece_limit);
                ("ok", Hoiho_util.Json.Bool calib_ok);
              ])
      | j -> j)
  in
  let relearn_json =
    Printf.sprintf
      "{\n\
      \    \"n_suffix_groups\": %d,\n\
      \    \"dirty_groups\": %d,\n\
      \    \"dirty_frac\": %.4f,\n\
      \    \"events\": %d,\n\
      \    \"incremental_ms\": %.2f,\n\
      \    \"batch_ms\": %.2f,\n\
      \    \"speedup\": %.3f,\n\
      \    \"groups_relearned\": %d,\n\
      \    \"groups_reused\": %d,\n\
      \    \"identical_to_batch\": %b,\n\
      \    \"target_speedup\": %.1f,\n\
      \    \"enforced\": %b,\n\
      \    \"ok\": %b\n\
      \  }"
      n_groups
      (List.length incr_stats.Hoiho.Delta.dirty)
      dirty_frac incr_stats.Hoiho.Delta.events incr_ms batch_ms relearn_speedup
      incr_stats.Hoiho.Delta.groups_relearned
      incr_stats.Hoiho.Delta.groups_reused relearn_identical relearn_target
      relearn_enforced relearn_ok
  in
  let json =
    Printf.sprintf
      {|{
  "dataset": "%s",
  "n_routers": %d,
  "n_hostnames": %d,
  "jobs": %d,
  "seq_wall_ms": %.2f,
  "par_wall_ms": %.2f,
  "speedup": %.3f,
  "hostnames_per_sec": %.1f,
  "results_identical": %b,
  "prefilter": { "exec_calls": %d, "skips": %d, "hit_rate": %.4f },
  "micro_ns": {
    "exec_match": %.1f,
    "exec_miss_prefiltered": %.1f,
    "exec_miss_unfiltered": %.1f,
    "nfavm_matches": %.1f,
    "pool_map_64": %.1f
  },
  "exec_match_baseline_ns": %.1f,
  "exec_match_reduction_frac": %.4f,
  "exec_alloc_bytes_per_miss": %.1f,
  "jobs_sweep": {
    "preset": "%s",
    "scale": %g,
    "n_routers": %d,
    "n_hostnames": %d,
    "cores": %d,
    "runs": [
%s
    ],
    "speedup_at_jobs4": %.3f,
    "target_speedup": %.1f,
    "enforced": %b,
    "enforced_reason": "%s",
    "results_identical": %b,
    "counters_identical": %b,
    "ok": %b
  },
  "chaos": {
    "seed": 4242,
    "level": 2,
    "off_replay_identical": %b,
    "injections": %d,
    "suffixes_degraded": %d,
    "suffixes_total": %d,
    "wall_ms": %.2f
  },
  "trace": {
    "untraced_wall_ms": %.2f,
    "traced_wall_ms": %.2f,
    "overhead_frac": %.4f,
    "spans": %d,
    "spans_dropped": %d,
    "results_identical": %b,
    "ok": %b
  },
  "apply": {
    "n_hostnames": %d,
    "jobs": %d,
    "cold_seq_ms": %.2f,
    "warm_seq_ms": %.2f,
    "cold_par_ms": %.2f,
    "warm_par_ms": %.2f,
    "cold_seq_hostnames_per_sec": %.1f,
    "warm_seq_hostnames_per_sec": %.1f,
    "cold_par_hostnames_per_sec": %.1f,
    "warm_par_hostnames_per_sec": %.1f,
    "results_identical_across_jobs": %b,
    "matches_in_process_geolocate": %b
  },
  "serve": {
    "clients_per_run": "jobs",
    "jobs1": { "n_requests": %d, "req_per_sec": %.1f, "p50_ms": %.3f, "p95_ms": %.3f, "p99_ms": %.3f, "wall_ms": %.2f },
    "jobs4": { "n_requests": %d, "req_per_sec": %.1f, "p50_ms": %.3f, "p95_ms": %.3f, "p99_ms": %.3f, "wall_ms": %.2f }
  },
  "health": {
    "bare_req_per_sec": %.1f,
    "monitored_req_per_sec": %.1f,
    "overhead_pct": %.2f,
    "budget_pct": %.1f,
    "enforced": %b,
    "ok": %b
  },
  "relearn": %s,
  "calibration": %s,
  "metrics": {
    "counters_identical_across_jobs": %b,
    "seq": %s,
    "par": %s
  }
}
|}
      config.Generate.label (Dataset.n_routers ds) n_hostnames jobs seq_ms par_ms
      speedup samples_per_sec identical pf_calls pf_skips hit_rate exec_hit_ns
      exec_miss_ns exec_unf_ns nfavm_ns pool_ns exec_match_baseline_ns
      exec_match_reduction exec_alloc_bytes sweep_config.Generate.label
      sweep_scale
      (Dataset.n_routers sweep_ds)
      sweep_hostnames cores
      (String.concat ",\n"
         (List.map
            (fun (j, ms, sp, mb, res_ok, ctr_ok) ->
              Printf.sprintf
                "      { \"jobs\": %d, \"wall_ms\": %.2f, \"speedup\": %.3f, \
                 \"hostnames_per_sec\": %.1f, \
                 \"main_domain_allocated_mb\": %.2f, \
                 \"results_identical_to_jobs1\": %b, \
                 \"counters_identical_to_jobs1\": %b }"
                j ms sp
                (float_of_int sweep_hostnames /. (ms /. 1000.0))
                mb res_ok ctr_ok)
            sweep_rows))
      (sweep_speedup_at 4) target_speedup sweep_enforced
      (if sweep_enforced then "cores >= 4"
       else Printf.sprintf "host has %d core(s), target needs >= 4 lanes" cores)
      (List.for_all (fun (_, _, _, _, r, _) -> r) sweep_rows)
      (List.for_all (fun (_, _, _, _, _, c) -> c) sweep_rows)
      sweep_ok replay_identical chaos_injected
      chaos_degraded
      (List.length chaos_run.Pipeline.results)
      chaos_ms replay_ms traced_ms trace_overhead trace_spans trace_dropped
      traced_identical trace_ok n_apply jobs apply1_cold_ms apply1_warm_ms
      applyn_cold_ms
      applyn_warm_ms (hps apply1_cold_ms) (hps apply1_warm_ms)
      (hps applyn_cold_ms) (hps applyn_warm_ms) apply_identical
      apply_matches_inproc serve1_n serve1_rps serve1_p50 serve1_p95 serve1_p99
      serve1_wall serve4_n serve4_rps serve4_p50 serve4_p95 serve4_p99
      serve4_wall health_plain_rps health_mon_rps health_overhead_pct
      health_budget_pct health_enforced health_ok relearn_json calibration_json
      counters_identical
      (String.trim (Obs.to_json seq_metrics))
      (String.trim (Obs.to_json par_metrics))
  in
  let oc = open_out "BENCH_pipeline.json" in
  output_string oc json;
  close_out oc;
  Report.note "wrote BENCH_pipeline.json"

(* --- driver --- *)

let experiments =
  [
    ("table1", "ITDK summaries", table1);
    ("fig5", "ping vs traceroute RTTs", fig5);
    ("table2", "coverage of usable NCs", table2);
    ("table3", "NC classifications", table3);
    ("table4", "geohint types and annotations", table4);
    ("fig9", "method comparison vs baselines", fig9);
    ("table5", "most frequently learned geohints", table5);
    ("table6", "validation of learned geohints", table6);
    ("fig10", "properties of learned geohints", fig10);
    ("fig11", "learned-geohint correctness vs VP proximity", fig11);
    ("ablation", "pipeline without stage 4", ablation);
    ("cai", "CBG feasibility of DRoP vs Hoiho locations", cai);
    ("stale", "stale-hostname detection accuracy", stale);
    ("asn", "ASN-extraction conventions (platform, §3.4)", asn);
    ("tbg", "topology anchoring coverage gain (§3.1, §8)", tbg);
    ("names", "router-name conventions (platform, IMC 2019)", names);
    ("spoof", "spoofing-VP detection (§5.1.4 future work)", spoof);
    ("fig13", "regex generation phases", fig13);
    ("fig2", "DRoP rigidity comparison", fig2);
    ("micro", "bechamel micro-benchmarks", micro);
    ("perf", "parallel pipeline + prefilter speedups", perf);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse selected = function
    | [] -> selected
    | "--quick" :: rest ->
        quick := true;
        parse selected rest
    | "--list" :: _ ->
        List.iter (fun (id, doc, _) -> Printf.printf "%-10s %s\n" id doc) experiments;
        exit 0
    | ("-e" | "--experiment") :: id :: rest -> parse (id :: selected) rest
    | other :: _ ->
        Printf.eprintf "unknown argument %s (try --list)\n" other;
        exit 2
  in
  let selected = parse [] args in
  let to_run =
    if selected = [] then experiments
    else List.filter (fun (id, _, _) -> List.mem id selected) experiments
  in
  if to_run = [] then begin
    Printf.eprintf "no such experiment (try --list)\n";
    exit 2
  end;
  let t0 = Unix.gettimeofday () in
  List.iter (fun (_, _, run) -> run ()) to_run;
  Printf.printf "\n(%d experiment(s), %.1f s)\n" (List.length to_run)
    (Unix.gettimeofday () -. t0)
